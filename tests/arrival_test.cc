#include "workload/arrival.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace distserve::workload {
namespace {

double MeanGap(ArrivalProcess& process, Rng& rng, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += process.NextGap(rng);
  }
  return sum / n;
}

double GapCv(ArrivalProcess& process, Rng& rng, int n) {
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = process.NextGap(rng);
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  return std::sqrt(var) / mean;
}

TEST(ArrivalTest, PoissonMeanGapIsInverseRate) {
  Rng rng(1);
  PoissonArrivals arrivals(4.0);
  EXPECT_DOUBLE_EQ(arrivals.rate(), 4.0);
  EXPECT_NEAR(MeanGap(arrivals, rng, 200000), 0.25, 0.005);
}

TEST(ArrivalTest, PoissonCvIsOne) {
  Rng rng(2);
  PoissonArrivals arrivals(2.0);
  EXPECT_NEAR(GapCv(arrivals, rng, 200000), 1.0, 0.02);
}

TEST(ArrivalTest, GammaMatchesTargetCv) {
  for (double cv : {0.5, 1.0, 2.0, 4.0}) {
    Rng rng(static_cast<uint64_t>(cv * 100));
    GammaArrivals arrivals(3.0, cv);
    EXPECT_NEAR(MeanGap(arrivals, rng, 300000), 1.0 / 3.0, 0.01) << "cv=" << cv;
    Rng rng2(static_cast<uint64_t>(cv * 100) + 1);
    EXPECT_NEAR(GapCv(arrivals, rng2, 300000), cv, 0.1 * cv + 0.02) << "cv=" << cv;
  }
}

TEST(ArrivalTest, GammaCvOneMatchesPoissonDistribution) {
  // CV = 1 gamma renewal is exactly exponential.
  Rng rng(5);
  GammaArrivals arrivals(1.0, 1.0);
  int below_ln2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (arrivals.NextGap(rng) < std::log(2.0)) {
      ++below_ln2;
    }
  }
  // P(X < ln 2) for Exp(1) is exactly 1/2.
  EXPECT_NEAR(static_cast<double>(below_ln2) / n, 0.5, 0.01);
}

TEST(ArrivalTest, FixedIsDeterministic) {
  Rng rng(6);
  FixedArrivals arrivals(8.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(arrivals.NextGap(rng), 0.125);
  }
}

TEST(ArrivalDeathTest, InvalidParametersAbort) {
  EXPECT_DEATH(PoissonArrivals{0.0}, "");
  EXPECT_DEATH((GammaArrivals{1.0, 0.0}), "");
  EXPECT_DEATH(FixedArrivals{-1.0}, "");
}

TEST(ArrivalDeathTest, NonFiniteParametersAbort) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH(PoissonArrivals{inf}, "finite");
  EXPECT_DEATH(PoissonArrivals{nan}, "");
  EXPECT_DEATH(PoissonArrivals{-inf}, "");
  EXPECT_DEATH((GammaArrivals{inf, 1.0}), "finite");
  EXPECT_DEATH((GammaArrivals{1.0, nan}), "");
  EXPECT_DEATH((GammaArrivals{1.0, inf}), "finite");
  EXPECT_DEATH(FixedArrivals{nan}, "");
}

TEST(ArrivalTest, ExtremeCvIsClampedAndKeepsMeanRate) {
  // cv far outside the supported band clamps (with a warning) instead of silently
  // generating underflowed gaps; the mean-rate contract survives the clamp.
  GammaArrivals tiny(5.0, 1e-6);
  EXPECT_DOUBLE_EQ(tiny.cv(), GammaArrivals::kMinCv);
  GammaArrivals huge(5.0, 1e6);
  EXPECT_DOUBLE_EQ(huge.cv(), GammaArrivals::kMaxCv);
  Rng rng(11);
  EXPECT_NEAR(MeanGap(tiny, rng, 100000), 0.2, 0.01);
}

// The NextGap contract: finite and >= 0 for every process across the whole supported
// parameter space, including the clamp edges where Gamma sampling is numerically nastiest.
TEST(ArrivalTest, NextGapContractHoldsAcrossParameterSpace) {
  const int kSamples = 20000;
  uint64_t seed = 100;
  for (double rate : {1e-3, 1.0, 1e3}) {
    for (double cv : {1e-9, GammaArrivals::kMinCv, 0.5, 1.0, 4.0, GammaArrivals::kMaxCv, 1e9}) {
      GammaArrivals gamma(rate, cv);
      Rng rng(seed++);
      for (int i = 0; i < kSamples; ++i) {
        const double gap = gamma.NextGap(rng);
        ASSERT_TRUE(std::isfinite(gap)) << "rate=" << rate << " cv=" << cv;
        ASSERT_GE(gap, 0.0) << "rate=" << rate << " cv=" << cv;
      }
    }
    PoissonArrivals poisson(rate);
    FixedArrivals fixed(rate);
    Rng rng(seed++);
    for (int i = 0; i < kSamples; ++i) {
      const double pg = poisson.NextGap(rng);
      ASSERT_TRUE(std::isfinite(pg) && pg >= 0.0);
      const double fg = fixed.NextGap(rng);
      ASSERT_TRUE(std::isfinite(fg) && fg > 0.0);
    }
  }
}

TEST(RateScheduleTest, InterpolatesBetweenKnots) {
  RateSchedule schedule({{0.0, 2.0}, {100.0, 10.0}, {200.0, 4.0}});
  EXPECT_DOUBLE_EQ(schedule.rate(0.0), 2.0);
  EXPECT_DOUBLE_EQ(schedule.rate(50.0), 6.0);
  EXPECT_DOUBLE_EQ(schedule.rate(100.0), 10.0);
  EXPECT_DOUBLE_EQ(schedule.rate(150.0), 7.0);
  // Non-periodic: holds the last rate past the end.
  EXPECT_DOUBLE_EQ(schedule.rate(500.0), 4.0);
}

TEST(RateScheduleTest, PeriodicWrapsAndSpikesMultiply) {
  RateSchedule schedule({{0.0, 2.0}, {50.0, 8.0}, {100.0, 2.0}}, /*periodic=*/true);
  EXPECT_DOUBLE_EQ(schedule.rate(125.0), schedule.rate(25.0));
  EXPECT_DOUBLE_EQ(schedule.rate(250.0), 8.0);
  schedule.AddSpike({120.0, 10.0, 3.0});
  EXPECT_DOUBLE_EQ(schedule.rate(125.0), 3.0 * schedule.rate(25.0));
  EXPECT_DOUBLE_EQ(schedule.rate(130.0), schedule.rate(30.0));  // half-open spike interval
  // Overlapping spikes compound, and max_rate bounds the worst case.
  schedule.AddSpike({125.0, 10.0, 2.0});
  EXPECT_DOUBLE_EQ(schedule.rate(126.0), 6.0 * schedule.rate(26.0));
  EXPECT_DOUBLE_EQ(schedule.max_rate(), 8.0 * 6.0);
}

TEST(RateScheduleTest, MeanRateIsExactForPiecewiseLinear) {
  RateSchedule schedule({{0.0, 2.0}, {100.0, 6.0}});
  EXPECT_NEAR(schedule.MeanRate(100.0), 4.0, 1e-9);
  // Constant 4.0 with a x2 spike over a tenth of the horizon: mean 4.0 * 1.1.
  RateSchedule flat({{0.0, 4.0}, {100.0, 4.0}});
  flat.AddSpike({40.0, 10.0, 2.0});
  EXPECT_NEAR(flat.MeanRate(100.0), 4.4, 1e-6);
}

TEST(RateScheduleTest, DiurnalShapeAndEnvelope) {
  const RateSchedule day = RateSchedule::Diurnal(2.0, 10.0, 86400.0);
  EXPECT_DOUBLE_EQ(day.rate(0.0), 2.0);
  EXPECT_DOUBLE_EQ(day.rate(0.5 * 86400.0), 10.0);  // mid-plateau
  EXPECT_DOUBLE_EQ(day.max_rate(), 10.0);
  EXPECT_DOUBLE_EQ(day.rate(86400.0), 2.0);  // wraps to the trough
  EXPECT_GT(day.MeanRate(86400.0), 2.0);
  EXPECT_LT(day.MeanRate(86400.0), 10.0);
}

TEST(RateScheduleDeathTest, InvalidKnotsAndSpikesAbort) {
  EXPECT_DEATH(RateSchedule({{0.0, 1.0}}), "");                          // too few knots
  EXPECT_DEATH(RateSchedule({{5.0, 1.0}, {10.0, 1.0}}), "");             // not starting at 0
  EXPECT_DEATH(RateSchedule({{0.0, 1.0}, {0.0, 2.0}}), "");              // non-increasing
  EXPECT_DEATH(RateSchedule({{0.0, 1.0}, {10.0, 0.0}}), "");             // zero rate
  EXPECT_DEATH(RateSchedule({{0.0, 1.0}, {10.0, std::nan("")}}), "");    // NaN rate
  RateSchedule ok({{0.0, 1.0}, {10.0, 2.0}});
  EXPECT_DEATH(ok.AddSpike({-1.0, 5.0, 2.0}), "");
  EXPECT_DEATH(ok.AddSpike({0.0, 0.0, 2.0}), "");
  EXPECT_DEATH(ok.AddSpike({0.0, 5.0, 0.0}), "");
}

TEST(ScheduledArrivalsTest, ConstantScheduleMatchesPoissonRate) {
  // Thinning a constant schedule at cv=1 is an ordinary Poisson process.
  RateSchedule flat({{0.0, 5.0}, {1000.0, 5.0}});
  ScheduledArrivals arrivals(&flat, 1.0);
  Rng rng(21);
  double t = 0.0;
  int count = 0;
  while ((t = arrivals.NextArrival(rng, t)) < 1000.0) {
    ++count;
  }
  EXPECT_NEAR(count / 1000.0, 5.0, 0.25);
}

TEST(ScheduledArrivalsTest, LocalRateTracksSchedule) {
  // Step schedule: 2 rps for the first half, 10 rps for the second; counts follow.
  RateSchedule steps({{0.0, 2.0}, {999.0, 2.0}, {1001.0, 10.0}, {2000.0, 10.0}});
  ScheduledArrivals arrivals(&steps, 1.0);
  Rng rng(22);
  double t = 0.0;
  int low = 0;
  int high = 0;
  while ((t = arrivals.NextArrival(rng, t)) < 2000.0) {
    (t < 1000.0 ? low : high) += 1;
  }
  EXPECT_NEAR(low / 1000.0, 2.0, 0.3);
  EXPECT_NEAR(high / 1000.0, 10.0, 0.6);
  EXPECT_GT(high, 3 * low);
}

TEST(ScheduledArrivalsTest, ArrivalsAreMonotone) {
  RateSchedule day = RateSchedule::Diurnal(1.0, 6.0, 2000.0);
  day.AddSpike({900.0, 200.0, 2.0});
  ScheduledArrivals arrivals(&day, 2.0);
  Rng rng(23);
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) {
    const double next = arrivals.NextArrival(rng, t);
    ASSERT_TRUE(std::isfinite(next));
    ASSERT_GE(next, t);
    t = next;
  }
}

}  // namespace
}  // namespace distserve::workload
