#include "workload/arrival.h"

#include <gtest/gtest.h>

#include <cmath>

namespace distserve::workload {
namespace {

double MeanGap(ArrivalProcess& process, Rng& rng, int n) {
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += process.NextGap(rng);
  }
  return sum / n;
}

double GapCv(ArrivalProcess& process, Rng& rng, int n) {
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = process.NextGap(rng);
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  return std::sqrt(var) / mean;
}

TEST(ArrivalTest, PoissonMeanGapIsInverseRate) {
  Rng rng(1);
  PoissonArrivals arrivals(4.0);
  EXPECT_DOUBLE_EQ(arrivals.rate(), 4.0);
  EXPECT_NEAR(MeanGap(arrivals, rng, 200000), 0.25, 0.005);
}

TEST(ArrivalTest, PoissonCvIsOne) {
  Rng rng(2);
  PoissonArrivals arrivals(2.0);
  EXPECT_NEAR(GapCv(arrivals, rng, 200000), 1.0, 0.02);
}

TEST(ArrivalTest, GammaMatchesTargetCv) {
  for (double cv : {0.5, 1.0, 2.0, 4.0}) {
    Rng rng(static_cast<uint64_t>(cv * 100));
    GammaArrivals arrivals(3.0, cv);
    EXPECT_NEAR(MeanGap(arrivals, rng, 300000), 1.0 / 3.0, 0.01) << "cv=" << cv;
    Rng rng2(static_cast<uint64_t>(cv * 100) + 1);
    EXPECT_NEAR(GapCv(arrivals, rng2, 300000), cv, 0.1 * cv + 0.02) << "cv=" << cv;
  }
}

TEST(ArrivalTest, GammaCvOneMatchesPoissonDistribution) {
  // CV = 1 gamma renewal is exactly exponential.
  Rng rng(5);
  GammaArrivals arrivals(1.0, 1.0);
  int below_ln2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    if (arrivals.NextGap(rng) < std::log(2.0)) {
      ++below_ln2;
    }
  }
  // P(X < ln 2) for Exp(1) is exactly 1/2.
  EXPECT_NEAR(static_cast<double>(below_ln2) / n, 0.5, 0.01);
}

TEST(ArrivalTest, FixedIsDeterministic) {
  Rng rng(6);
  FixedArrivals arrivals(8.0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(arrivals.NextGap(rng), 0.125);
  }
}

TEST(ArrivalDeathTest, InvalidParametersAbort) {
  EXPECT_DEATH(PoissonArrivals{0.0}, "");
  EXPECT_DEATH((GammaArrivals{1.0, 0.0}), "");
  EXPECT_DEATH(FixedArrivals{-1.0}, "");
}

}  // namespace
}  // namespace distserve::workload
