// Sharded-simulation determinism (DESIGN.md §17): the conservative-lookahead core and the
// fleet built on it must be bit-identical to the sequential path at any shard or thread
// count, and late cross-shard messages must fail loudly.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "placement/sweep.h"
#include "serving/fleet.h"
#include "serving/fleet_probe.h"
#include "simcore/sharded_simulator.h"
#include "trace/recorder.h"
#include "workload/generator.h"

namespace distserve {
namespace {

// --- Raw core: a ring of actors forwarding messages with latency >= lookahead. ---

constexpr double kLookahead = 0.01;

struct RingCtx {
  simcore::ShardedSimulator* sim = nullptr;
  std::vector<int> actor_shard;
  std::vector<int> senders;
  std::vector<std::vector<double>> log;  // per-actor receive times, the comparable output

  void Arrive(int actor, int hops) {
    simcore::Simulator* local = sim->shard(actor_shard[static_cast<size_t>(actor)]);
    log[static_cast<size_t>(actor)].push_back(local->now());
    if (hops <= 0) {
      return;
    }
    const int next = (actor + 3) % static_cast<int>(senders.size());
    const double latency = kLookahead * static_cast<double>(1 + actor % 3);
    sim->Post(senders[static_cast<size_t>(actor)], actor_shard[static_cast<size_t>(next)],
              local->now() + latency, [this, next, hops] { Arrive(next, hops - 1); });
  }
};

std::vector<std::vector<double>> RunRing(int num_shards, ThreadPool* pool) {
  constexpr int kActors = 8;
  constexpr int kHops = 40;
  simcore::ShardedSimulator::Options options;
  options.num_shards = num_shards;
  options.lookahead = kLookahead;
  options.pool = pool;
  options.channel_capacity = 4;  // tiny ring: exercise the spill path too
  simcore::ShardedSimulator sim(options);
  RingCtx ctx;
  ctx.sim = &sim;
  ctx.log.resize(kActors);
  for (int a = 0; a < kActors; ++a) {
    ctx.actor_shard.push_back(a % sim.num_shards());
    ctx.senders.push_back(sim.AddSender(ctx.actor_shard.back()));
  }
  for (int a = 0; a < kActors; ++a) {
    sim.shard(ctx.actor_shard[static_cast<size_t>(a)])
        ->ScheduleAt(0.001 * static_cast<double>(a), [ctx_ptr = &ctx, a] {
          ctx_ptr->Arrive(a, kHops);
        });
  }
  const int64_t events = sim.Run();
  EXPECT_GT(events, 0);
  // Per-shard stats are consistent with the totals.
  int64_t shard_events = 0;
  for (const auto& s : sim.stats().shards) {
    shard_events += s.events;
  }
  EXPECT_EQ(shard_events, events);
  EXPECT_GT(sim.stats().sync_rounds, 0);
  return ctx.log;
}

TEST(ShardedSimulatorTest, RingBitIdenticalAcrossShardCounts) {
  const auto baseline = RunRing(1, nullptr);
  EXPECT_EQ(RunRing(2, nullptr), baseline);
  EXPECT_EQ(RunRing(8, nullptr), baseline);
}

TEST(ShardedSimulatorTest, RingBitIdenticalWithThreadPool) {
  const auto baseline = RunRing(1, nullptr);
  ThreadPool pool(3);
  EXPECT_EQ(RunRing(4, &pool), baseline);
  EXPECT_EQ(RunRing(8, &pool), baseline);
}

TEST(ShardedSimulatorDeathTest, LateCrossShardMessageFailsLoudly) {
  auto violate = [] {
    simcore::ShardedSimulator::Options options;
    options.num_shards = 2;
    options.lookahead = 0.01;
    simcore::ShardedSimulator sim(options);
    const int sender = sim.AddSender(0);
    sim.shard(0)->ScheduleAt(1.0, [&sim, sender] {
      // Half a lookahead out: too soon, must abort rather than silently reorder.
      sim.Post(sender, 1, sim.shard(0)->now() + 0.005, [] {});
    });
    sim.Run();
  };
  EXPECT_DEATH(violate(), "lookahead violation");
}

// --- Fleet bit-identity across shard counts: disaggregated, colocated, faulted. ---

workload::Trace FleetTrace(int n, double rate, uint64_t seed = 7) {
  workload::FixedDataset dataset(128, 16);
  workload::TraceSpec spec;
  spec.rate = rate;
  spec.num_requests = n;
  spec.seed = seed;
  return workload::GenerateTrace(spec, dataset);
}

serving::FleetConfig DisaggFleet(int groups, int shards) {
  serving::FleetConfig fc;
  fc.num_groups = groups;
  fc.shards = shards;
  fc.group_config.model = model::ModelSpec::Opt13B();
  fc.group_config.cluster = cluster::ClusterSpec::PaperTestbed();
  fc.group_config.plan.prefill_par = {1, 1};
  fc.group_config.plan.decode_par = {1, 1};
  fc.group_config.plan.num_prefill = 1;
  fc.group_config.plan.num_decode = 1;
  fc.group_config.plan.intra_node_transfers = true;
  return fc;
}

serving::FleetConfig ColocatedFleet(int groups, int shards) {
  serving::FleetConfig fc;
  fc.num_groups = groups;
  fc.shards = shards;
  fc.colocated = true;
  fc.colocated_config.model = model::ModelSpec::Opt13B();
  fc.colocated_config.cluster = cluster::ClusterSpec::PaperTestbed();
  fc.colocated_config.num_instances = 1;
  return fc;
}

std::vector<serving::FaultPlan> GroupFaults(int groups) {
  // Group 1 loses its prefill instance mid-run and recovers; group 2 (when present) loses
  // its decode permanently — exercises parking, re-routing and the router's serviceability
  // staleness across shard boundaries.
  std::vector<serving::FaultPlan> faults(static_cast<size_t>(groups));
  if (groups > 1) {
    faults[1].events = {
        {5.0, serving::FaultDomain::kPrefill, serving::FaultAction::kFail, 0},
        {20.0, serving::FaultDomain::kPrefill, serving::FaultAction::kRecover, 0}};
  }
  if (groups > 2) {
    faults[2].events = {{8.0, serving::FaultDomain::kDecode, serving::FaultAction::kFail, 0}};
  }
  return faults;
}

serving::FleetResult RunFleet(serving::FleetConfig config, const workload::Trace& trace) {
  serving::FleetSystem fleet(std::move(config));
  return fleet.Run(trace);
}

void ExpectFleetIdentical(const serving::FleetResult& a, const serving::FleetResult& b) {
  EXPECT_TRUE(metrics::BitIdentical(a.collector, b.collector));
  EXPECT_EQ(a.group_completed, b.group_completed);
  EXPECT_EQ(a.router_parked_lost, b.router_parked_lost);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.collector.fault_stats().requests_lost, b.collector.fault_stats().requests_lost);
  EXPECT_DOUBLE_EQ(a.collector.fault_stats().downtime_seconds,
                   b.collector.fault_stats().downtime_seconds);
}

TEST(FleetShardingTest, DisaggregatedBitIdenticalAtShards128) {
  const workload::Trace trace = FleetTrace(300, 8.0);
  const serving::FleetResult r1 = RunFleet(DisaggFleet(4, 1), trace);
  EXPECT_EQ(r1.collector.count() + r1.collector.lost_count(), trace.size());
  ExpectFleetIdentical(r1, RunFleet(DisaggFleet(4, 2), trace));
  ExpectFleetIdentical(r1, RunFleet(DisaggFleet(4, 8), trace));
}

TEST(FleetShardingTest, ColocatedBitIdenticalAtShards128) {
  const workload::Trace trace = FleetTrace(300, 8.0);
  const serving::FleetResult r1 = RunFleet(ColocatedFleet(4, 1), trace);
  EXPECT_EQ(r1.collector.count(), trace.size());
  ExpectFleetIdentical(r1, RunFleet(ColocatedFleet(4, 2), trace));
  ExpectFleetIdentical(r1, RunFleet(ColocatedFleet(4, 8), trace));
}

TEST(FleetShardingTest, FaultedBitIdenticalAtShards128) {
  const workload::Trace trace = FleetTrace(400, 8.0);
  auto make = [&trace](int shards) {
    serving::FleetConfig fc = DisaggFleet(3, shards);
    fc.group_faults = GroupFaults(3);
    return RunFleet(std::move(fc), trace);
  };
  const serving::FleetResult r1 = make(1);
  EXPECT_GT(r1.collector.fault_stats().instance_failures, 0);
  ExpectFleetIdentical(r1, make(2));
  ExpectFleetIdentical(r1, make(8));
}

TEST(FleetShardingTest, ThreadPoolWorkersDoNotChangeResults) {
  const workload::Trace trace = FleetTrace(200, 8.0);
  const serving::FleetResult serial = RunFleet(DisaggFleet(4, 4), trace);
  ThreadPool pool(3);
  serving::FleetConfig fc = DisaggFleet(4, 4);
  fc.pool = &pool;
  ExpectFleetIdentical(serial, RunFleet(std::move(fc), trace));
}

TEST(FleetShardingTest, TraceJsonIdenticalAcrossShardCounts) {
  const workload::Trace trace = FleetTrace(120, 8.0);
  auto run = [&trace](int shards) {
    std::vector<std::unique_ptr<trace::Recorder>> recorders;
    serving::FleetConfig fc = DisaggFleet(2, shards);
    for (int g = 0; g < fc.num_groups; ++g) {
      recorders.push_back(std::make_unique<trace::Recorder>());
      fc.group_recorders.push_back(recorders.back().get());
    }
    RunFleet(std::move(fc), trace);
    std::vector<std::string> json;
    for (const auto& rec : recorders) {
      json.push_back(rec->ChromeJson());
    }
    return json;
  };
  EXPECT_EQ(run(1), run(2));
}

TEST(FleetShardingTest, RouterParksWhenNoGroupServiceable) {
  const workload::Trace trace = FleetTrace(100, 10.0);
  serving::FleetConfig fc = DisaggFleet(1, 1);
  fc.group_faults.resize(1);
  // The only group loses prefill at t=1 and never recovers: everything after the router
  // learns of it parks at the router and is recorded lost.
  fc.group_faults[0].events = {
      {1.0, serving::FaultDomain::kPrefill, serving::FaultAction::kFail, 0}};
  const serving::FleetResult r = RunFleet(std::move(fc), trace);
  EXPECT_GT(r.router_parked_lost, 0);
  EXPECT_EQ(r.collector.count() + r.collector.lost_count(), trace.size());
}

// --- The sweep driver and the fleet probe are deterministic too. ---

TEST(SweepDriverTest, WorkerCountDoesNotChangeResults) {
  const auto square = [](size_t i) { return static_cast<double>(i) * 1.5; };
  const std::vector<double> serial = placement::RunSweep<double>(nullptr, 32, square);
  ThreadPool pool(3);
  EXPECT_EQ(placement::RunSweep<double>(&pool, 32, square), serial);
}

TEST(FleetProbeTest, MaxRateIdenticalAcrossShardCounts) {
  workload::FixedDataset dataset(128, 16);
  auto probe = [&dataset](int shards) {
    serving::FleetProbeConfig config;
    config.fleet = DisaggFleet(2, shards);
    config.slo = {0.5, 0.1};
    config.search.num_requests = 60;
    config.search.min_trace_duration = 5.0;
    config.search.max_requests = 200;
    config.search.bisection_iters = 3;
    config.search.rate_probe = 4.0;
    return serving::FindMaxFleetRate(config, dataset);
  };
  const double r1 = probe(1);
  EXPECT_GT(r1, 0.0);
  EXPECT_DOUBLE_EQ(r1, probe(4));
}

}  // namespace
}  // namespace distserve
