#include "cluster/gpu_spec.h"

#include <gtest/gtest.h>

namespace distserve::cluster {
namespace {

TEST(GpuSpecTest, A100SpecsMatchDatasheet) {
  const GpuSpec gpu = GpuSpec::A100_80GB();
  EXPECT_EQ(gpu.name, "A100-SXM4-80GB");
  EXPECT_DOUBLE_EQ(gpu.peak_fp16_flops, 312e12);
  EXPECT_DOUBLE_EQ(gpu.hbm_bandwidth, 2039e9);
  EXPECT_EQ(gpu.memory_bytes, 80LL * 1024 * 1024 * 1024);
  EXPECT_GT(gpu.nvlink_bandwidth, 100e9);
}

TEST(GpuSpecTest, EffectiveRatesAreDerated) {
  const GpuSpec gpu = GpuSpec::A100_80GB();
  EXPECT_LT(gpu.effective_flops(), gpu.peak_fp16_flops);
  EXPECT_GE(gpu.effective_flops(), 0.3 * gpu.peak_fp16_flops);
  EXPECT_LT(gpu.effective_bandwidth(), gpu.hbm_bandwidth);
  EXPECT_GE(gpu.effective_bandwidth(), 0.5 * gpu.hbm_bandwidth);
}

TEST(GpuSpecTest, FortyGigVariantHalvesMemoryOnly) {
  const GpuSpec a80 = GpuSpec::A100_80GB();
  const GpuSpec a40 = GpuSpec::A100_40GB();
  EXPECT_EQ(a40.memory_bytes * 2, a80.memory_bytes);
  EXPECT_DOUBLE_EQ(a40.peak_fp16_flops, a80.peak_fp16_flops);
  EXPECT_DOUBLE_EQ(a40.hbm_bandwidth, a80.hbm_bandwidth);
}

}  // namespace
}  // namespace distserve::cluster
