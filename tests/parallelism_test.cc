#include "model/parallelism.h"

#include <gtest/gtest.h>

namespace distserve::model {
namespace {

TEST(ParallelismTest, NumGpusAndToString) {
  const ParallelismConfig par{4, 3};
  EXPECT_EQ(par.num_gpus(), 12);
  EXPECT_EQ(par.ToString(), "tp=4,pp=3");
  EXPECT_EQ((ParallelismConfig{1, 1}).num_gpus(), 1);
}

TEST(ShardedViewTest, LayersPerStageCeil) {
  const ModelSpec spec = ModelSpec::Opt13B();  // 40 layers
  EXPECT_EQ(ShardedModelView(spec, {1, 1}).layers_per_stage(), 40);
  EXPECT_EQ(ShardedModelView(spec, {1, 2}).layers_per_stage(), 20);
  EXPECT_EQ(ShardedModelView(spec, {1, 3}).layers_per_stage(), 14);  // ceil(40/3)
  EXPECT_EQ(ShardedModelView(spec, {1, 40}).layers_per_stage(), 1);
}

TEST(ShardedViewTest, WeightAndKvShardsDivideEvenly) {
  const ModelSpec spec = ModelSpec::Opt66B();
  const ShardedModelView whole(spec, {1, 1});
  const ShardedModelView sharded(spec, {2, 4});
  EXPECT_EQ(sharded.weight_bytes_per_gpu(), whole.weight_bytes_per_gpu() / 8);
  EXPECT_EQ(sharded.kv_bytes_per_token_per_gpu(), whole.kv_bytes_per_token_per_gpu() / 8);
}

TEST(ShardedViewTest, MemoryFitMatchesPaperConfigs) {
  const cluster::GpuSpec gpu = cluster::GpuSpec::A100_80GB();
  // OPT-13B (26 GB) fits a single A100-80GB.
  EXPECT_TRUE(ShardedModelView(ModelSpec::Opt13B(), {1, 1}).FitsInMemory(gpu));
  // OPT-66B (132 GB) does not fit one GPU but fits 4-way sharding.
  EXPECT_FALSE(ShardedModelView(ModelSpec::Opt66B(), {1, 1}).FitsInMemory(gpu));
  EXPECT_TRUE(ShardedModelView(ModelSpec::Opt66B(), {4, 1}).FitsInMemory(gpu));
  // OPT-175B (350 GB) needs ~8+ GPUs.
  EXPECT_FALSE(ShardedModelView(ModelSpec::Opt175B(), {4, 1}).FitsInMemory(gpu));
  EXPECT_TRUE(ShardedModelView(ModelSpec::Opt175B(), {4, 3}).FitsInMemory(gpu));
}

TEST(ShardedViewTest, KvCapacityPositiveOnlyWhenWeightsFit) {
  const cluster::GpuSpec gpu = cluster::GpuSpec::A100_80GB();
  EXPECT_EQ(ShardedModelView(ModelSpec::Opt66B(), {1, 1}).KvCapacityTokens(gpu), 0);
  const int64_t capacity = ShardedModelView(ModelSpec::Opt13B(), {1, 1}).KvCapacityTokens(gpu);
  EXPECT_GT(capacity, 0);
  // 13B on 80 GB: ~(73.6 - 26) GB / 0.82 MB per token ~ 58k tokens.
  EXPECT_NEAR(static_cast<double>(capacity), 58000.0, 8000.0);
}

TEST(ShardedViewTest, KvCapacityScalesWithGpus) {
  const cluster::GpuSpec gpu = cluster::GpuSpec::A100_80GB();
  const int64_t one = ShardedModelView(ModelSpec::Opt13B(), {1, 1}).KvCapacityTokens(gpu);
  const int64_t two = ShardedModelView(ModelSpec::Opt13B(), {2, 1}).KvCapacityTokens(gpu);
  // Two GPUs hold the same weights once but twice the raw memory: capacity more than doubles.
  EXPECT_GT(two, 2 * one);
}

TEST(ShardedViewTest, ReserveFractionReducesCapacity) {
  const cluster::GpuSpec gpu = cluster::GpuSpec::A100_80GB();
  const ShardedModelView view(ModelSpec::Opt13B(), {1, 1});
  EXPECT_GT(view.KvCapacityTokens(gpu, 0.05), view.KvCapacityTokens(gpu, 0.3));
}

}  // namespace
}  // namespace distserve::model
