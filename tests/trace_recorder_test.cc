#include "trace/recorder.h"

#include <gtest/gtest.h>

#include <string>

#include "trace/attribution.h"

namespace distserve::trace {
namespace {

Recorder::Options NoCoalesce() {
  Recorder::Options options;
  options.coalesce_repeats = false;
  return options;
}

TEST(TraceRecorderTest, TransitionsTileGapFree) {
  Recorder rec;
  rec.NewRun();
  rec.Transition(7, 1.0, SpanKind::kPrefillQueue, PrefillPid(0), 0);
  rec.Transition(7, 1.5, SpanKind::kPrefillExec, PrefillPid(0), 0);
  rec.Transition(7, 2.0, SpanKind::kDecodeAdmit, DecodePid(0), 0);
  rec.Transition(7, 2.25, SpanKind::kKvTransfer, DecodePid(0), 0);
  rec.Transition(7, 2.5, SpanKind::kDecodeQueue, DecodePid(0), 0);
  rec.Transition(7, 3.0, SpanKind::kDecodeStep, DecodePid(0), 0);
  rec.Finish(7, 4.0);
  ASSERT_EQ(rec.spans().size(), 6u);
  EXPECT_EQ(rec.open_count(), 0u);
  for (size_t i = 1; i < rec.spans().size(); ++i) {
    EXPECT_EQ(rec.spans()[i - 1].end, rec.spans()[i].start);  // bitwise tiling
  }
  EXPECT_EQ(rec.spans().front().kind, SpanKind::kPrefillQueue);
  EXPECT_EQ(rec.spans().back().end, 4.0);
  ASSERT_EQ(rec.outcomes().size(), 1u);
  EXPECT_TRUE(rec.outcomes()[0].done());
  EXPECT_EQ(rec.outcomes()[0].at, 4.0);
  EXPECT_TRUE(ValidateSpans(rec).empty()) << ValidateSpans(rec);
}

TEST(TraceRecorderTest, CoalesceMergesSameKindSamePlacement) {
  Recorder rec;  // coalescing on by default
  rec.NewRun();
  rec.Transition(1, 0.0, SpanKind::kDecodeStep, DecodePid(0), 0, 0);
  rec.Transition(1, 0.1, SpanKind::kDecodeStep, DecodePid(0), 0, 1);
  rec.Transition(1, 0.2, SpanKind::kDecodeStep, DecodePid(0), 0, 2);
  rec.Finish(1, 0.3);
  ASSERT_EQ(rec.spans().size(), 1u);
  EXPECT_EQ(rec.spans()[0].start, 0.0);
  EXPECT_EQ(rec.spans()[0].end, 0.3);
  EXPECT_EQ(rec.spans()[0].merged, 3);
  EXPECT_EQ(rec.spans()[0].detail, 2);  // last detail wins
}

TEST(TraceRecorderTest, CoalesceBreaksOnLaneChange) {
  Recorder rec;
  rec.NewRun();
  rec.Transition(1, 0.0, SpanKind::kDecodeStep, DecodePid(0), 0);
  rec.Transition(1, 0.1, SpanKind::kDecodeStep, DecodePid(0), 1);  // moved lanes
  rec.Finish(1, 0.2);
  ASSERT_EQ(rec.spans().size(), 2u);
  EXPECT_EQ(rec.spans()[0].end, rec.spans()[1].start);
}

TEST(TraceRecorderTest, NoCoalesceKeepsPerStepSpans) {
  Recorder rec(NoCoalesce());
  rec.NewRun();
  rec.Transition(1, 0.0, SpanKind::kDecodeStep, DecodePid(0), 0);
  rec.Transition(1, 0.1, SpanKind::kDecodeStep, DecodePid(0), 0);
  rec.Finish(1, 0.2);
  ASSERT_EQ(rec.spans().size(), 2u);
}

TEST(TraceRecorderTest, DropClosesOpenSpanAndMarksLost) {
  Recorder rec;
  rec.NewRun();
  rec.Transition(3, 1.0, SpanKind::kPrefillQueue, PrefillPid(0), 0);
  rec.Drop(3, 2.0);
  ASSERT_EQ(rec.spans().size(), 1u);
  EXPECT_EQ(rec.spans()[0].end, 2.0);
  ASSERT_EQ(rec.outcomes().size(), 1u);
  EXPECT_FALSE(rec.outcomes()[0].done());
  EXPECT_EQ(rec.outcomes()[0].kind, Recorder::OutcomeKind::kLost);
  // Dropping a request that never opened a span is tolerated (parked arrivals can be failed
  // fast before any instance saw them).
  rec.Drop(4, 2.5);
  EXPECT_EQ(rec.outcomes().size(), 2u);
  EXPECT_TRUE(ValidateSpans(rec).empty()) << ValidateSpans(rec);
}

TEST(TraceRecorderTest, NewRunSeparatesTimelinesForSameRequestId) {
  Recorder rec;
  rec.NewRun();
  rec.Transition(5, 0.0, SpanKind::kPrefillQueue, PrefillPid(0), 0);
  rec.Finish(5, 1.0);
  rec.NewRun();
  rec.Transition(5, 0.0, SpanKind::kPrefillQueue, PrefillPid(0), 0);
  rec.Finish(5, 2.0);
  ASSERT_EQ(rec.spans().size(), 2u);
  EXPECT_EQ(rec.spans()[0].run, 1);
  EXPECT_EQ(rec.spans()[1].run, 2);
  const auto attrs = ComputeAttribution(rec);
  ASSERT_EQ(attrs.size(), 2u);
  EXPECT_EQ(attrs[0].total(), 1.0);
  EXPECT_EQ(attrs[1].total(), 2.0);
  EXPECT_TRUE(ValidateSpans(rec).empty()) << ValidateSpans(rec);
}

TEST(TraceRecorderTest, InstanceSpansAreOptIn) {
  Recorder off;
  off.NewRun();
  off.InstanceSpan(PrefillPid(0), 0, SpanKind::kPrefillExec, 0.0, 1.0);
  EXPECT_TRUE(off.spans().empty());

  Recorder::Options options;
  options.instance_spans = true;
  Recorder on(options);
  on.NewRun();
  on.InstanceSpan(PrefillPid(0), 0, SpanKind::kPrefillExec, 0.0, 1.0, 42);
  ASSERT_EQ(on.spans().size(), 1u);
  EXPECT_EQ(on.spans()[0].request, -1);  // instance-track spans carry no owning request
  EXPECT_EQ(on.spans()[0].pid, PrefillPid(0));
  EXPECT_EQ(on.spans()[0].detail, 42);
}

TEST(TraceRecorderTest, AttributionFoldsStagesAndFaults) {
  Recorder rec;
  rec.NewRun();
  rec.Transition(9, 0.0, SpanKind::kPrefillQueue, PrefillPid(0), 0);
  rec.Transition(9, 1.0, SpanKind::kPrefillExec, PrefillPid(0), 0);
  rec.Transition(9, 3.0, SpanKind::kRestart, kControllerPid, 0);  // fault interposes
  rec.Transition(9, 3.5, SpanKind::kPrefillQueue, PrefillPid(1), 0);
  rec.Transition(9, 4.0, SpanKind::kPrefillExec, PrefillPid(1), 0);
  rec.Transition(9, 6.0, SpanKind::kDecodeAdmit, DecodePid(0), 0);
  rec.Transition(9, 6.5, SpanKind::kKvTransfer, DecodePid(0), 0);
  rec.Transition(9, 7.0, SpanKind::kDecodeQueue, DecodePid(0), 0);
  rec.Transition(9, 7.25, SpanKind::kDecodeStep, DecodePid(0), 0);
  rec.Finish(9, 10.0);
  const auto attrs = ComputeAttribution(rec);
  ASSERT_EQ(attrs.size(), 1u);
  const RequestAttribution& a = attrs[0];
  // Stage extents mirror the collector's last-timestamp subtractions: the post-restart
  // prefill run replaces the pre-fault one.
  EXPECT_EQ(a.prefill_queue, 0.5);  // 3.5 .. 4.0
  EXPECT_EQ(a.prefill_exec, 2.0);   // 4.0 .. 6.0
  EXPECT_EQ(a.decode_admit, 0.5);
  EXPECT_EQ(a.transfer, 0.5);
  EXPECT_EQ(a.decode_queue, 0.25);
  EXPECT_EQ(a.decode_exec, 2.75);
  EXPECT_EQ(a.fault, 0.5);  // the restart span 3.0 .. 3.5
  EXPECT_EQ(a.total(), 10.0);
  EXPECT_TRUE(ValidateSpans(rec).empty()) << ValidateSpans(rec);
}

TEST(TraceRecorderTest, ChromeJsonCarriesExactTimesAndMetadata) {
  Recorder rec;
  rec.SetProcessName(PrefillPid(0), "prefill-0");
  rec.NewRun();
  rec.Transition(2, 0.125, SpanKind::kPrefillQueue, PrefillPid(0), 0);
  rec.Finish(2, 0.375);
  const std::string json = rec.ChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"prefill-0\""), std::string::npos);
  EXPECT_NE(json.find("\"prefill_queue\""), std::string::npos);
  // Exact f64 seconds ride in args so the validator can check tiling bitwise.
  EXPECT_NE(json.find("\"t0\":0.125"), std::string::npos);
  EXPECT_NE(json.find("\"t1\":0.375"), std::string::npos);
  EXPECT_NE(json.find("\"request_done\""), std::string::npos);
}

TEST(TraceRecorderTest, ValidateSpansFlagsBadFirstKindAndOrphans) {
  Recorder bad_first;
  bad_first.NewRun();
  bad_first.Transition(1, 0.0, SpanKind::kDecodeStep, DecodePid(0), 0);
  bad_first.Finish(1, 1.0);
  EXPECT_NE(ValidateSpans(bad_first).find("starts with"), std::string::npos);

  Recorder orphan;
  orphan.NewRun();
  orphan.Transition(1, 0.0, SpanKind::kPrefillQueue, PrefillPid(0), 0);
  // Never finished: the open span and missing outcome must both be caught.
  EXPECT_FALSE(ValidateSpans(orphan).empty());
}

TEST(TraceRecorderTest, ValidateSpansFlagsOverlappingInstanceTrack) {
  Recorder::Options options;
  options.instance_spans = true;
  Recorder rec(options);
  rec.NewRun();
  rec.InstanceSpan(DecodePid(0), 0, SpanKind::kDecodeStep, 0.0, 1.0);
  rec.InstanceSpan(DecodePid(0), 0, SpanKind::kDecodeStep, 0.5, 1.5);
  EXPECT_NE(ValidateSpans(rec).find("overlaps"), std::string::npos);
}

TEST(TraceRecorderTest, ClearResetsEverything) {
  Recorder rec;
  rec.NewRun();
  rec.Transition(1, 0.0, SpanKind::kPrefillQueue, PrefillPid(0), 0);
  rec.Finish(1, 1.0);
  rec.Clear();
  EXPECT_TRUE(rec.spans().empty());
  EXPECT_TRUE(rec.outcomes().empty());
  EXPECT_EQ(rec.open_count(), 0u);
}

}  // namespace
}  // namespace distserve::trace
