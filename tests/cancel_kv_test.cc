// KV-memory conservation under cancellation, timeout, and preemption — the PR-2 FailFast
// leak class replayed against the scenario teardown paths. Property-style: annotated traces
// (prefix hits + tenant priorities + cancels/deadlines) run through all three engines, and
// every KV pool must drain to zero with completions + abandonments summing to the trace.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "baselines/vllm_system.h"
#include "engine/colocated_instance.h"
#include "serving/serving_system.h"
#include "workload/dataset.h"
#include "workload/generator.h"
#include "workload/scenario.h"

namespace distserve {
namespace {

// A trace where every scenario axis fires: half the prompts carry cached prefixes, a third
// of the tenants outrank the rest, a quarter of the clients hang up early, and the deadline
// is tight enough that queue buildup converts into timeouts.
workload::Trace AnnotatedTrace(int n, double rate, uint64_t seed) {
  const auto dataset = workload::MakeDatasetByName("sharegpt");
  workload::TraceSpec spec;
  spec.rate = rate;
  spec.num_requests = n;
  spec.seed = seed;
  workload::Trace trace = workload::GenerateTrace(spec, *dataset);
  workload::PrefixCacheSpec prefix;
  prefix.hit_rate = 0.5;
  prefix.seed = seed;
  workload::ApplyPrefixCache(&trace, prefix);
  workload::TenantSpec tenants;
  tenants.high_priority_fraction = 0.3;
  tenants.seed = seed;
  workload::ApplyTenantClasses(&trace, tenants);
  workload::CancellationSpec cancels;
  cancels.cancel_rate = 0.25;
  cancels.cancel_after_mean = 0.5;
  cancels.timeout = 8.0;
  cancels.seed = seed;
  workload::ApplyCancellations(&trace, cancels);
  return trace;
}

void ExpectOutcomesConserve(const metrics::Collector& results, size_t trace_size) {
  EXPECT_EQ(results.count() + results.NeverCompletedCount(), trace_size);
  // The scenario must actually have fired, or the test is vacuous.
  EXPECT_GT(results.cancelled_count() + results.timed_out_count(), 0u);
}

TEST(CancelKvConservationTest, DisaggregatedServingDrainsAllPools) {
  for (const uint64_t seed : {3u, 17u, 101u}) {
    const workload::Trace trace = AnnotatedTrace(400, 12.0, seed);
    serving::ServingConfig config;
    config.model = model::ModelSpec::Opt13B();
    config.cluster = cluster::ClusterSpec::PaperTestbed();
    config.plan.prefill_par = {1, 1};
    config.plan.decode_par = {1, 1};
    config.plan.num_prefill = 2;
    config.plan.num_decode = 1;
    config.plan.intra_node_transfers = true;
    serving::ServingSystem system(config);
    const metrics::Collector results = system.Run(trace);
    ExpectOutcomesConserve(results, trace.size());
    for (const auto& p : system.prefill_instances()) {
      EXPECT_EQ(p->kv().used_blocks(), 0) << "seed " << seed;
      EXPECT_EQ(p->queue_length(), 0u);
    }
    for (const auto& d : system.decode_instances()) {
      EXPECT_EQ(d->kv().used_blocks(), 0) << "seed " << seed;
      EXPECT_EQ(d->resident_requests(), 0);
    }
  }
}

TEST(CancelKvConservationTest, VllmBaselineDrainsAllPools) {
  for (const uint64_t seed : {5u, 23u}) {
    const workload::Trace trace = AnnotatedTrace(400, 12.0, seed);
    baselines::VllmConfig config;
    config.model = model::ModelSpec::Opt13B();
    config.cluster = cluster::ClusterSpec::PaperTestbed();
    config.num_instances = 2;
    baselines::VllmSystem system(std::move(config));
    const metrics::Collector results = system.Run(trace);
    ExpectOutcomesConserve(results, trace.size());
    for (const auto& instance : system.instances()) {
      EXPECT_EQ(instance->kv().used_blocks(), 0) << "seed " << seed;
    }
  }
}

TEST(CancelKvConservationTest, ChunkedBaselineDrainsAllPools) {
  for (const uint64_t seed : {7u, 31u}) {
    const workload::Trace trace = AnnotatedTrace(400, 12.0, seed);
    baselines::VllmConfig config;
    config.model = model::ModelSpec::Opt13B();
    config.cluster = cluster::ClusterSpec::PaperTestbed();
    config.num_instances = 2;
    config.engine_options.mode = engine::ColocatedInstance::Options::SchedulingMode::kChunked;
    config.engine_options.chunk_budget = 256;
    baselines::VllmSystem system(std::move(config));
    const metrics::Collector results = system.Run(trace);
    ExpectOutcomesConserve(results, trace.size());
    for (const auto& instance : system.instances()) {
      EXPECT_EQ(instance->kv().used_blocks(), 0) << "seed " << seed;
    }
  }
}

// Preemption interleaved with cancellation at engine level: a starved KV pool forces
// priority evictions while client cancels land on waiting, prefilling, and decoding
// requests alike (including mid-step, exercising the cancel_pending deferral). Whatever
// the interleaving, the pool must end empty.
TEST(CancelKvConservationTest, PreemptionPlusCancelConservesKvUnderPressure) {
  for (const uint64_t seed : {2u, 13u, 47u}) {
    workload::Trace trace = AnnotatedTrace(80, 20.0, seed);
    simcore::Simulator sim;
    const model::LatencyModel lm(model::ModelSpec::Opt13B(), {1, 1},
                                 cluster::GpuSpec::A100_80GB());
    engine::ColocatedInstance::Options options;
    options.mode = engine::ColocatedInstance::Options::SchedulingMode::kChunked;
    options.chunk_budget = 256;
    // Room for only a couple of resident contexts: admission blocks constantly and every
    // high-priority arrival preempts.
    engine::ColocatedInstance instance(&sim, lm, /*kv_capacity_tokens=*/2048, options, 0);
    int completed = 0;
    int abandoned = 0;
    instance.set_on_complete([&](engine::RequestState*) { ++completed; });
    instance.set_on_cancelled([&](engine::RequestState*) { ++abandoned; });
    std::vector<std::unique_ptr<engine::RequestState>> states;
    states.reserve(trace.size());
    for (const workload::Request& req : trace) {
      states.push_back(std::make_unique<engine::RequestState>(req));
      engine::RequestState* rs = states.back().get();
      sim.ScheduleAt(req.arrival_time, [&instance, rs] { instance.Enqueue(rs); });
      // Standalone engine: play the serving layer's role and deliver the client cancel.
      if (req.cancel_at > 0.0) {
        sim.ScheduleAt(req.cancel_at, [&instance, rs] {
          if (rs->phase == engine::RequestPhase::kDone ||
              rs->phase == engine::RequestPhase::kCancelled || rs->cancel_pending) {
            return;
          }
          rs->phase = engine::RequestPhase::kCancelled;
          instance.Cancel(rs);
        });
      }
    }
    sim.Run();
    EXPECT_EQ(completed + abandoned, static_cast<int>(trace.size())) << "seed " << seed;
    EXPECT_GT(abandoned, 0) << "seed " << seed;
    EXPECT_GT(instance.preemptions(), 0) << "seed " << seed;
    EXPECT_EQ(instance.kv().used_blocks(), 0) << "seed " << seed;
  }
}

}  // namespace
}  // namespace distserve
