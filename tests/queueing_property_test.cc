// Property tests validating the DES engine against closed-form queueing theory (§3.1).
//
// A disaggregated prefill instance fed uniform-length prompts by a Poisson process, with
// batching disabled, is an M/D/1 queue: its empirical average TTFT must converge to Eq. 1.
// The same setup validates the Eq. 2 / Eq. 3 parallelism variants directionally.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

#include "cluster/gpu_spec.h"
#include "engine/prefill_instance.h"
#include "queueing/md1.h"
#include "workload/generator.h"

namespace distserve {
namespace {

// Runs a prefill-only DES with batching disabled (max batch 1) and returns mean TTFT.
double EngineMeanTtft(const model::LatencyModel& lm, double rate, int num_requests,
                      uint64_t seed) {
  simcore::Simulator sim;
  engine::PrefillInstance::Options options;
  options.batch_policy.max_batch_size = 1;
  options.batch_policy.target_tokens = 1;  // every prompt "over-length": runs alone
  engine::PrefillInstance instance(&sim, lm, /*kv_capacity_tokens=*/1 << 26, options, 0);

  double ttft_sum = 0.0;
  int completed = 0;
  instance.set_on_complete([&](engine::RequestState* r) {
    ttft_sum += r->record.first_token - r->record.arrival;
    ++completed;
    // KV is not pulled in this prefill-only rig; release immediately.
    instance.ReleaseKv(r);
  });

  workload::FixedDataset dataset(512, 2);
  workload::TraceSpec spec;
  spec.rate = rate;
  spec.num_requests = num_requests;
  spec.seed = seed;
  const workload::Trace trace = workload::GenerateTrace(spec, dataset);
  std::vector<std::unique_ptr<engine::RequestState>> states;
  states.reserve(trace.size());
  for (const workload::Request& req : trace) {
    states.push_back(std::make_unique<engine::RequestState>(req));
    engine::RequestState* state = states.back().get();
    sim.ScheduleAt(req.arrival_time, [&instance, state] { instance.Enqueue(state); });
  }
  sim.Run();
  EXPECT_EQ(completed, num_requests);
  return ttft_sum / completed;
}

class Md1ConvergenceTest : public ::testing::TestWithParam<double> {};

TEST_P(Md1ConvergenceTest, EngineMatchesEq1AcrossUtilizations) {
  const double utilization = GetParam();
  const model::LatencyModel lm(model::ModelSpec::Opt13B(), {1, 1},
                               cluster::GpuSpec::A100_80GB());
  const double service = lm.PrefillFullTime(std::vector<int>{512});
  const double rate = utilization / service;
  const double analytic = queueing::Md1AvgTtft(rate, service);
  // Average over several seeds to tame M/D/1 variance at high utilization.
  double engine_sum = 0.0;
  const int kSeeds = 5;
  for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
    engine_sum += EngineMeanTtft(lm, rate, 4000, seed);
  }
  const double engine_mean = engine_sum / kSeeds;
  const double tolerance = (utilization >= 0.8 ? 0.25 : 0.10) * analytic;
  EXPECT_NEAR(engine_mean, analytic, tolerance)
      << "utilization=" << utilization << " service=" << service;
}

INSTANTIATE_TEST_SUITE_P(Utilizations, Md1ConvergenceTest,
                         ::testing::Values(0.1, 0.3, 0.5, 0.7, 0.85));

TEST(QueueingPropertyTest, InterOpBeatsIntraOpAtHighRate) {
  // §3.1 conclusion at engine level: with 2 GPUs, intra-op wins at low rate, inter-op at
  // rates beyond intra-op's stability limit.
  const model::ModelSpec spec = model::ModelSpec::Opt13B();
  const cluster::GpuSpec gpu = cluster::GpuSpec::A100_80GB();
  const model::LatencyModel intra(spec, {2, 1}, gpu);
  const model::LatencyModel inter(spec, {1, 2}, gpu);
  const model::LatencyModel single(spec, {1, 1}, gpu);
  const double service = single.PrefillFullTime(std::vector<int>{512});

  const double low_rate = 0.2 / service;
  EXPECT_LT(EngineMeanTtft(intra, low_rate, 2000, 3), EngineMeanTtft(inter, low_rate, 2000, 3));

  const double k = intra.IntraOpSpeedup(512);
  ASSERT_LT(k, 2.0);
  const double high_rate = (k + 0.08 * (2.0 - k) * 2.0) / service;  // just past intra's limit
  EXPECT_GT(EngineMeanTtft(intra, high_rate, 2000, 3),
            EngineMeanTtft(inter, high_rate, 2000, 3));
}

TEST(QueueingPropertyTest, InterOpEngineTracksEq2) {
  const model::ModelSpec spec = model::ModelSpec::Opt13B();
  const cluster::GpuSpec gpu = cluster::GpuSpec::A100_80GB();
  const model::LatencyModel inter(spec, {1, 2}, gpu);
  const model::LatencyModel single(spec, {1, 1}, gpu);
  const double service = single.PrefillFullTime(std::vector<int>{512});
  const double rate = 1.2 / service;  // beyond one GPU, within two
  const double analytic = queueing::InterOp2AvgTtft(rate, service);
  double engine_sum = 0.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    engine_sum += EngineMeanTtft(inter, rate, 4000, seed);
  }
  // The engine's pipeline adds stage-ceil effects; expect agreement within 25%.
  EXPECT_NEAR(engine_sum / 5, analytic, 0.25 * analytic);
}

}  // namespace
}  // namespace distserve
