// Parameterized property tests: engine invariants across the model family, parallelism
// configurations, scheduling modes, and traffic shapes.
//
// Invariants checked on every combination:
//   * conservation: every submitted request completes exactly once;
//   * monotone per-request timeline (arrival <= prefill_start < first_token <= ... <= done);
//   * memory hygiene: all KV blocks released at drain;
//   * work accounting: decode generates exactly sum(output_len - 1) tokens.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "baselines/vllm_system.h"
#include "serving/serving_system.h"
#include "workload/generator.h"

namespace distserve {
namespace {

using DisaggParam = std::tuple<model::ModelSpec, model::ParallelismConfig,
                               model::ParallelismConfig, double /*burst cv*/>;

class DisaggregatedPropertyTest : public ::testing::TestWithParam<DisaggParam> {};

TEST_P(DisaggregatedPropertyTest, InvariantsHold) {
  const auto& [spec, prefill_par, decode_par, cv] = GetParam();
  const cluster::ClusterSpec cluster = cluster::ClusterSpec::PaperTestbed();

  serving::ServingConfig config;
  config.model = spec;
  config.cluster = cluster;
  config.plan.prefill_par = prefill_par;
  config.plan.decode_par = decode_par;
  config.plan.num_prefill = 1;
  config.plan.num_decode = 1;
  config.plan.intra_node_transfers = true;
  serving::ServingSystem system(config);

  const auto dataset = workload::MakeShareGptLike();
  workload::TraceSpec trace_spec;
  trace_spec.rate = 4.0;
  trace_spec.num_requests = 300;
  trace_spec.seed = 17;
  trace_spec.burstiness_cv = cv;
  const workload::Trace trace = workload::GenerateTrace(trace_spec, *dataset);

  const metrics::Collector results = system.Run(trace);
  ASSERT_EQ(results.count(), trace.size());

  int64_t expected_decode_tokens = 0;
  for (const workload::Request& r : trace) {
    expected_decode_tokens += r.output_len - 1;
  }
  int64_t generated = 0;
  for (const auto& d : system.decode_instances()) {
    generated += d->tokens_generated();
    EXPECT_EQ(d->kv().used_blocks(), 0);
    EXPECT_EQ(d->resident_requests(), 0);
  }
  EXPECT_EQ(generated, expected_decode_tokens);
  for (const auto& p : system.prefill_instances()) {
    EXPECT_EQ(p->kv().used_blocks(), 0);
    EXPECT_EQ(p->queue_length(), 0u);
  }
  for (const metrics::RequestRecord& r : results.records()) {
    EXPECT_GE(r.prefill_start, r.arrival);
    EXPECT_GT(r.first_token, r.prefill_start);
    EXPECT_GE(r.transfer_start, r.first_token);
    EXPECT_GE(r.transfer_end, r.transfer_start);
    EXPECT_GE(r.decode_start, r.transfer_end);
    EXPECT_GE(r.completion, r.decode_start);
  }
}

std::string DisaggName(const ::testing::TestParamInfo<DisaggParam>& info) {
  const model::ModelSpec& spec = std::get<0>(info.param);
  const model::ParallelismConfig& p = std::get<1>(info.param);
  const model::ParallelismConfig& d = std::get<2>(info.param);
  const double cv = std::get<3>(info.param);
  std::string name = spec.name + "_P" + std::to_string(p.tp) + "x" + std::to_string(p.pp) +
                     "_D" + std::to_string(d.tp) + "x" + std::to_string(d.pp) + "_cv" +
                     std::to_string(static_cast<int>(cv));
  for (char& c : name) {
    if (c == '-' || c == '.') {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, DisaggregatedPropertyTest,
    ::testing::Values(
        DisaggParam{model::ModelSpec::Opt13B(), {1, 1}, {1, 1}, 1.0},
        DisaggParam{model::ModelSpec::Opt13B(), {2, 1}, {1, 2}, 1.0},
        DisaggParam{model::ModelSpec::Opt13B(), {1, 4}, {4, 1}, 1.0},
        DisaggParam{model::ModelSpec::Opt13B(), {1, 1}, {1, 1}, 4.0},
        DisaggParam{model::ModelSpec::Opt13B(), {2, 2}, {2, 2}, 4.0},
        DisaggParam{model::ModelSpec::Opt2_7B(), {1, 1}, {1, 1}, 1.0},
        DisaggParam{model::ModelSpec::Opt6_7B(), {2, 1}, {1, 1}, 2.0},
        DisaggParam{model::ModelSpec::Opt66B(), {4, 1}, {2, 2}, 1.0},
        DisaggParam{model::ModelSpec::Opt66B(), {4, 2}, {4, 2}, 4.0},
        DisaggParam{model::ModelSpec::Opt175B(), {8, 1}, {4, 2}, 1.0}),
    DisaggName);

using ColocParam =
    std::tuple<engine::ColocatedInstance::Options::SchedulingMode, int /*tp*/, double /*cv*/>;

class ColocatedPropertyTest : public ::testing::TestWithParam<ColocParam> {};

TEST_P(ColocatedPropertyTest, InvariantsHold) {
  const auto& [mode, tp, cv] = GetParam();
  baselines::VllmConfig config;
  config.model = model::ModelSpec::Opt13B();
  config.cluster = cluster::ClusterSpec::PaperTestbed();
  config.par = {tp, 1};
  config.num_instances = 2;
  config.engine_options.mode = mode;
  config.engine_options.chunk_size = 128;
  baselines::VllmSystem system(std::move(config));

  const auto dataset = workload::MakeShareGptLike();
  workload::TraceSpec trace_spec;
  trace_spec.rate = 5.0;
  trace_spec.num_requests = 300;
  trace_spec.seed = 23;
  trace_spec.burstiness_cv = cv;
  const workload::Trace trace = workload::GenerateTrace(trace_spec, *dataset);
  const metrics::Collector results = system.Run(trace);
  ASSERT_EQ(results.count(), trace.size());
  for (const auto& inst : system.instances()) {
    EXPECT_EQ(inst->kv().used_blocks(), 0);
    EXPECT_EQ(inst->waiting_count(), 0u);
  }
  for (const metrics::RequestRecord& r : results.records()) {
    EXPECT_GE(r.prefill_start, r.arrival);
    EXPECT_GE(r.first_token, r.prefill_start);
    EXPECT_GE(r.completion, r.first_token);
  }
}

std::string ColocName(const ::testing::TestParamInfo<ColocParam>& info) {
  const auto mode = std::get<0>(info.param);
  const int tp = std::get<1>(info.param);
  const double cv = std::get<2>(info.param);
  const char* mode_name =
      mode == engine::ColocatedInstance::Options::SchedulingMode::kPrefillPriority
          ? "PrefillPrio"
          : (mode == engine::ColocatedInstance::Options::SchedulingMode::kMixed ? "Mixed"
                                                                                : "Chunked");
  return std::string(mode_name) + "_tp" + std::to_string(tp) + "_cv" +
         std::to_string(static_cast<int>(cv));
}

INSTANTIATE_TEST_SUITE_P(
    ModeGrid, ColocatedPropertyTest,
    ::testing::Combine(
        ::testing::Values(
            engine::ColocatedInstance::Options::SchedulingMode::kPrefillPriority,
            engine::ColocatedInstance::Options::SchedulingMode::kMixed,
            engine::ColocatedInstance::Options::SchedulingMode::kChunked),
        ::testing::Values(1, 2), ::testing::Values(1.0, 4.0)),
    ColocName);

// Determinism across the whole grid: identical (seed, config) -> identical timelines.
TEST(EnginePropertyTest, CrossConfigDeterminism) {
  const auto dataset = workload::MakeShareGptLike();
  workload::TraceSpec spec;
  spec.rate = 6.0;
  spec.num_requests = 400;
  spec.seed = 101;
  const workload::Trace trace = workload::GenerateTrace(spec, *dataset);
  auto run_once = [&] {
    serving::ServingConfig config;
    config.model = model::ModelSpec::Opt13B();
    config.cluster = cluster::ClusterSpec::PaperTestbed();
    config.plan.prefill_par = {2, 1};
    config.plan.decode_par = {1, 2};
    config.plan.num_prefill = 2;
    config.plan.num_decode = 2;
    config.plan.intra_node_transfers = true;
    serving::ServingSystem system(config);
    const metrics::Collector collector = system.Run(trace);
    double digest = 0.0;
    for (const metrics::RequestRecord& r : collector.records()) {
      digest += r.completion + 3.0 * r.first_token;
    }
    return digest;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace distserve
