// End-to-end fault injection through the serving system: instance deaths mid-prefill and
// mid-decode, KV-loss re-prefills, dead links with retry/timeout/backoff, parking during total
// outages, and the determinism guarantees the fig13 bench depends on.
#include <gtest/gtest.h>

#include "serving/serving_system.h"
#include "workload/generator.h"

namespace distserve::serving {
namespace {

ServingConfig BasicConfig(int num_prefill = 1, int num_decode = 1) {
  ServingConfig config;
  config.model = model::ModelSpec::Opt13B();
  config.cluster = cluster::ClusterSpec::PaperTestbed();
  config.plan.prefill_par = {1, 1};
  config.plan.decode_par = {1, 1};
  config.plan.num_prefill = num_prefill;
  config.plan.num_decode = num_decode;
  config.plan.intra_node_transfers = true;
  return config;
}

workload::Trace MakeTrace(double rate, int n, uint64_t seed = 1, int input_len = 256,
                          int output_len = 32) {
  workload::FixedDataset dataset(input_len, output_len);
  workload::TraceSpec spec;
  spec.rate = rate;
  spec.num_requests = n;
  spec.seed = seed;
  return workload::GenerateTrace(spec, dataset);
}

FaultEvent Fail(FaultDomain domain, int index, double time) {
  return {time, domain, FaultAction::kFail, index};
}

FaultEvent Recover(FaultDomain domain, int index, double time) {
  return {time, domain, FaultAction::kRecover, index};
}

TEST(FaultInjectionTest, EmptyPlanIsBitIdenticalToNoFaultConfig) {
  const workload::Trace trace = MakeTrace(4.0, 200, 7);
  ServingSystem plain(BasicConfig(2, 2));
  ServingConfig with_options = BasicConfig(2, 2);
  with_options.fault_options.max_transfer_retries = 9;  // knobs alone must change nothing
  ServingSystem faultless(std::move(with_options));
  const metrics::Collector ra = plain.Run(trace);
  const metrics::Collector rb = faultless.Run(trace);
  ASSERT_EQ(ra.count(), rb.count());
  for (size_t i = 0; i < ra.count(); ++i) {
    EXPECT_DOUBLE_EQ(ra.records()[i].first_token, rb.records()[i].first_token);
    EXPECT_DOUBLE_EQ(ra.records()[i].completion, rb.records()[i].completion);
  }
  EXPECT_FALSE(rb.fault_stats().any());
}

TEST(FaultInjectionTest, DeterministicUnderFaults) {
  const workload::Trace trace = MakeTrace(4.0, 300, 7);
  auto make = [] {
    ServingConfig config = BasicConfig(2, 2);
    config.faults.events = {Fail(FaultDomain::kPrefill, 0, 5.0),
                            Recover(FaultDomain::kPrefill, 0, 25.0),
                            Fail(FaultDomain::kDecode, 1, 12.0),
                            Recover(FaultDomain::kDecode, 1, 40.0),
                            Fail(FaultDomain::kLink, 0, 18.0),
                            Recover(FaultDomain::kLink, 0, 22.0)};
    return config;
  };
  ServingSystem a(make());
  ServingSystem b(make());
  const metrics::Collector ra = a.Run(trace);
  const metrics::Collector rb = b.Run(trace);
  ASSERT_EQ(ra.count(), rb.count());
  EXPECT_EQ(ra.lost_count(), rb.lost_count());
  for (size_t i = 0; i < ra.count(); ++i) {
    EXPECT_DOUBLE_EQ(ra.records()[i].completion, rb.records()[i].completion);
  }
  EXPECT_EQ(ra.fault_stats().prefill_restarts, rb.fault_stats().prefill_restarts);
  EXPECT_EQ(ra.fault_stats().kv_reprefills, rb.fault_stats().kv_reprefills);
  EXPECT_EQ(ra.fault_stats().transfer_retries, rb.fault_stats().transfer_retries);
}

TEST(FaultInjectionTest, PrefillDeathMidRunRestartsWorkOnSurvivor) {
  ServingConfig config = BasicConfig(2, 1);
  // Permanent death of prefill-0 while traffic is flowing. The load is heavy enough (long
  // prompts near instance saturation) that prefill-0 has queued or executing work at t=10.
  config.faults.events = {Fail(FaultDomain::kPrefill, 0, 10.0)};
  ServingSystem system(std::move(config));
  const workload::Trace trace = MakeTrace(20.0, 300, 3, /*input_len=*/512);
  const metrics::Collector results = system.Run(trace);
  EXPECT_EQ(results.count(), 300u);
  EXPECT_EQ(results.lost_count(), 0u);
  EXPECT_EQ(results.fault_stats().instance_failures, 1);
  EXPECT_GT(results.fault_stats().prefill_restarts, 0);
  EXPECT_FALSE(system.prefill_instances()[0]->alive());
  EXPECT_TRUE(system.prefill_instances()[1]->alive());
  // The dead instance holds no KV; the survivor drained normally.
  EXPECT_EQ(system.prefill_instances()[0]->kv().used_blocks(), 0);
  EXPECT_EQ(system.prefill_instances()[1]->kv().used_blocks(), 0);
}

TEST(FaultInjectionTest, DecodeDeathLosesKvAndForcesReprefill) {
  ServingConfig config = BasicConfig(1, 2);
  config.faults.events = {Fail(FaultDomain::kDecode, 0, 10.0)};
  ServingSystem system(std::move(config));
  const workload::Trace trace = MakeTrace(4.0, 200, 3);
  const metrics::Collector results = system.Run(trace);
  EXPECT_EQ(results.count(), 200u);
  EXPECT_EQ(results.lost_count(), 0u);
  // Requests decoding on the dead instance lost their KV entirely (prefill copy already
  // released) and re-prefilled; transferring/pending ones were merely re-dispatched.
  EXPECT_GT(results.fault_stats().kv_reprefills, 0);
  EXPECT_EQ(system.decode_instances()[0]->kv().used_blocks(), 0);
  EXPECT_EQ(system.decode_instances()[1]->kv().used_blocks(), 0);
}

TEST(FaultInjectionTest, FaultsDegradeAttainment) {
  const workload::Trace trace = MakeTrace(4.0, 300, 3);
  const metrics::SloSpec slo{0.4, 0.1};
  ServingSystem healthy(BasicConfig(2, 2));
  const double base = healthy.Run(trace).ComputeAttainment(slo).both;
  ServingConfig config = BasicConfig(2, 2);
  config.faults.events = {Fail(FaultDomain::kPrefill, 0, 5.0),
                          Recover(FaultDomain::kPrefill, 0, 35.0),
                          Fail(FaultDomain::kDecode, 0, 20.0)};
  ServingSystem faulted(std::move(config));
  const metrics::Collector results = faulted.Run(trace);
  EXPECT_LT(results.ComputeAttainment(slo).both, base);
  EXPECT_GT(results.fault_stats().downtime_seconds, 0.0);
}

TEST(FaultInjectionTest, DeadLinkRetriesThenRecovers) {
  ServingConfig config = BasicConfig(1, 1);
  // Link dies for one second; the backoff schedule (0.25 + 0.5 + 1 + 2) out-waits it, so every
  // pull eventually lands and nothing is lost.
  config.faults.events = {Fail(FaultDomain::kLink, 0, 8.0), Recover(FaultDomain::kLink, 0, 9.0)};
  ServingSystem system(std::move(config));
  const workload::Trace trace = MakeTrace(4.0, 100, 3);
  const metrics::Collector results = system.Run(trace);
  EXPECT_EQ(results.count(), 100u);
  EXPECT_EQ(results.lost_count(), 0u);
  EXPECT_GT(results.fault_stats().transfer_retries, 0);
  EXPECT_GT(system.ingress_links()[0]->transfers_dropped(), 0);
}

TEST(FaultInjectionTest, RetryExhaustionWithNoAlternateRouteLosesRequests) {
  ServingConfig config = BasicConfig(1, 1);
  // The only decode ingress link dies permanently: pulls exhaust their retries and there is no
  // other decode instance to route to, so transferring requests fail fast.
  config.faults.events = {Fail(FaultDomain::kLink, 0, 8.0)};
  ServingSystem system(std::move(config));
  const workload::Trace trace = MakeTrace(4.0, 100, 3);
  const metrics::Collector results = system.Run(trace);
  EXPECT_GT(results.lost_count(), 0u);
  EXPECT_EQ(results.count() + results.lost_count(), 100u);
  EXPECT_GT(results.fault_stats().transfer_retries, 0);
  EXPECT_GT(results.fault_stats().requests_lost, 0);
  EXPECT_LT(results.CompletionRate(), 1.0);
  // Lost requests count against attainment.
  const metrics::Attainment attainment = results.ComputeAttainment({10.0, 10.0});
  EXPECT_LT(attainment.both, 1.0);
}

TEST(FaultInjectionTest, RetryExhaustionRoutesAroundDeadLink) {
  ServingConfig config = BasicConfig(1, 2);
  // Long prompts over a slow cross-node NIC: each pull takes ~1 s against a ~0.3 s prefill
  // cadence, so the links run a standing backlog and pulls are guaranteed in flight on link-0
  // when it dies; those requests burn their retries and then re-dispatch to decode-1.
  config.plan.intra_node_transfers = false;
  config.cluster.cross_node_bandwidth = 0.8e9;
  config.faults.events = {Fail(FaultDomain::kLink, 0, 5.0)};
  ServingSystem system(std::move(config));
  const workload::Trace trace = MakeTrace(8.0, 150, 3, /*input_len=*/1024);
  const metrics::Collector results = system.Run(trace);
  // A second decode instance with a live link exists, so nothing is lost: requests that
  // exhausted retries on the dead link re-dispatched to decode-1.
  EXPECT_EQ(results.count(), 150u);
  EXPECT_EQ(results.lost_count(), 0u);
  EXPECT_GT(results.fault_stats().decode_redispatches, 0);
}

TEST(FaultInjectionTest, TotalPrefillOutageParksArrivalsUntilRecovery) {
  ServingConfig config = BasicConfig(1, 1);
  config.faults.events = {Fail(FaultDomain::kPrefill, 0, 5.0),
                          Recover(FaultDomain::kPrefill, 0, 20.0)};
  ServingSystem system(std::move(config));
  const workload::Trace trace = MakeTrace(4.0, 150, 3);
  const metrics::Collector results = system.Run(trace);
  // Arrivals during the outage had nowhere to go; they waited parked and completed after the
  // recovery. Their TTFT absorbs the outage.
  EXPECT_EQ(results.count(), 150u);
  EXPECT_EQ(results.lost_count(), 0u);
  EXPECT_GT(results.fault_stats().instance_recoveries, 0);
  EXPECT_GT(results.TtftPercentile(99.0), 10.0);
}

TEST(FaultInjectionTest, PermanentTotalOutageLosesParkedRequests) {
  ServingConfig config = BasicConfig(1, 1);
  config.faults.events = {Fail(FaultDomain::kPrefill, 0, 5.0)};
  ServingSystem system(std::move(config));
  const workload::Trace trace = MakeTrace(4.0, 100, 3);
  const metrics::Collector results = system.Run(trace);
  // Everything not already past prefill when the only prefill died is unservable.
  EXPECT_GT(results.lost_count(), 0u);
  EXPECT_EQ(results.count() + results.lost_count(), 100u);
}

TEST(FaultInjectionTest, DowntimeAccountingMatchesPlan) {
  ServingConfig config = BasicConfig(2, 2);
  config.faults.events = {Fail(FaultDomain::kDecode, 1, 5.0),
                          Recover(FaultDomain::kDecode, 1, 17.5)};
  ServingSystem system(std::move(config));
  const workload::Trace trace = MakeTrace(2.0, 100, 3);
  const metrics::Collector results = system.Run(trace);
  EXPECT_DOUBLE_EQ(results.fault_stats().downtime_seconds, 12.5);
  EXPECT_EQ(results.fault_stats().instance_failures, 1);
  EXPECT_EQ(results.fault_stats().instance_recoveries, 1);
}

TEST(FaultInjectionTest, RedundantFaultEventsAreIdempotent) {
  ServingConfig config = BasicConfig(2, 1);
  config.faults.events = {Fail(FaultDomain::kPrefill, 0, 5.0),
                          Fail(FaultDomain::kPrefill, 0, 6.0),   // already dead: no-op
                          Recover(FaultDomain::kPrefill, 0, 15.0),
                          Recover(FaultDomain::kPrefill, 0, 16.0)};  // already alive: no-op
  ServingSystem system(std::move(config));
  const workload::Trace trace = MakeTrace(2.0, 100, 3);
  const metrics::Collector results = system.Run(trace);
  EXPECT_EQ(results.count(), 100u);
  EXPECT_EQ(results.fault_stats().instance_failures, 1);
  EXPECT_EQ(results.fault_stats().instance_recoveries, 1);
}

TEST(FaultInjectionTest, FaultCallbackSeesEveryEvent) {
  ServingConfig config = BasicConfig(2, 1);
  config.faults.events = {Fail(FaultDomain::kPrefill, 0, 5.0),
                          Recover(FaultDomain::kPrefill, 0, 15.0)};
  ServingSystem system(std::move(config));
  std::vector<FaultEvent> seen;
  system.set_fault_callback([&](const FaultEvent& e) { seen.push_back(e); });
  system.Run(MakeTrace(2.0, 50, 3));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].action, FaultAction::kFail);
  EXPECT_EQ(seen[1].action, FaultAction::kRecover);
}

}  // namespace
}  // namespace distserve::serving
