#include "queueing/md1.h"

#include <gtest/gtest.h>

#include <cmath>

namespace distserve::queueing {
namespace {

TEST(Md1Test, ZeroRateGivesPureServiceTime) {
  EXPECT_DOUBLE_EQ(Md1AvgTtft(0.0, 0.1), 0.1);
  EXPECT_DOUBLE_EQ(Md1AvgQueueingDelay(0.0, 0.1), 0.0);
}

TEST(Md1Test, KnownValue) {
  // R = 5, D = 0.1 -> rho = 0.5; wait = 5*0.01/(2*0.5) = 0.05.
  EXPECT_NEAR(Md1AvgQueueingDelay(5.0, 0.1), 0.05, 1e-12);
  EXPECT_NEAR(Md1AvgTtft(5.0, 0.1), 0.15, 1e-12);
}

TEST(Md1Test, UnstableQueueIsInfinite) {
  EXPECT_TRUE(std::isinf(Md1AvgTtft(10.0, 0.1)));
  EXPECT_TRUE(std::isinf(Md1AvgTtft(11.0, 0.1)));
}

TEST(Md1Test, WaitGrowsWithRate) {
  double prev = 0.0;
  for (double rate : {1.0, 3.0, 5.0, 7.0, 9.0}) {
    const double wait = Md1AvgQueueingDelay(rate, 0.1);
    EXPECT_GT(wait, prev);
    prev = wait;
  }
}

TEST(Md1Test, MaxStableRates) {
  EXPECT_DOUBLE_EQ(Md1MaxStableRate(0.1), 10.0);
  EXPECT_DOUBLE_EQ(InterOp2MaxStableRate(0.1), 20.0);
  EXPECT_DOUBLE_EQ(IntraOp2MaxStableRate(0.1, 1.6), 16.0);
}

TEST(InterOpTest, Eq2MatchesClosedForm) {
  // Eq. 2: D + R D^2 / (4 (2 - R D)) with R = 10, D = 0.1 -> 0.1 + 0.1/(4*1) = 0.125.
  EXPECT_NEAR(InterOp2AvgTtft(10.0, 0.1), 0.125, 1e-12);
  EXPECT_TRUE(std::isinf(InterOp2AvgTtft(20.0, 0.1)));
}

TEST(IntraOpTest, Eq3MatchesClosedForm) {
  // Eq. 3 with K = 2 (perfect speedup): D/2 + R D^2 / (4 (2 - R D)).
  const double k2 = IntraOp2AvgTtft(10.0, 0.1, 2.0);
  EXPECT_NEAR(k2, 0.05 + 10.0 * 0.01 / (4.0 * (2.0 - 1.0)), 1e-12);
  EXPECT_TRUE(std::isinf(IntraOp2AvgTtft(16.0, 0.1, 1.6)));
}

TEST(CrossoverTest, IntraWinsLowRateInterWinsHighRate) {
  // §3.1: intra-op is better at low rates (execution-time term), inter-op at high rates
  // (queueing term) when K < 2.
  const double service = 0.1;
  const double k = 1.5;
  EXPECT_LT(IntraOp2AvgTtft(0.5, service, k), InterOp2AvgTtft(0.5, service));
  EXPECT_GT(IntraOp2AvgTtft(14.0, service, k), InterOp2AvgTtft(14.0, service));
}

TEST(CrossoverTest, CrossoverRateSeparatesRegimes) {
  const double service = 0.1;
  const double k = 1.5;
  const double crossover = InterIntraCrossoverRate(service, k);
  ASSERT_GT(crossover, 0.0);
  EXPECT_LT(IntraOp2AvgTtft(crossover * 0.9, service, k),
            InterOp2AvgTtft(crossover * 0.9, service));
  EXPECT_GT(IntraOp2AvgTtft(crossover * 1.1, service, k),
            InterOp2AvgTtft(crossover * 1.1, service));
}

TEST(CrossoverTest, HigherKPushesCrossoverRight) {
  // Figure 4b: a better intra-op speedup keeps intra-op competitive to higher rates.
  const double service = 0.1;
  const double low_k = InterIntraCrossoverRate(service, 1.3);
  const double high_k = InterIntraCrossoverRate(service, 1.9);
  ASSERT_GT(low_k, 0.0);
  ASSERT_GT(high_k, 0.0);
  EXPECT_GT(high_k, low_k);
}

TEST(CrossoverTest, PerfectKIntraDominatesEverywhere) {
  // With K = 2 exactly, Eq. 3 < Eq. 2 across the whole stable range: no crossover.
  EXPECT_DOUBLE_EQ(InterIntraCrossoverRate(0.1, 2.0), 0.0);
}

}  // namespace
}  // namespace distserve::queueing
