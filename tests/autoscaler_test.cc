#include "serving/autoscaler.h"

#include <gtest/gtest.h>

#include "cluster/topology.h"
#include "model/model_spec.h"

namespace distserve::serving {
namespace {

Autoscaler::Options FastOptions() {
  Autoscaler::Options options;
  options.cooldown = 100.0;
  options.confirm_windows = 2;
  return options;
}

WindowSample MakeSample(double start, double rate, double attainment) {
  WindowSample s;
  s.start = start;
  s.end = start + 100.0;
  s.observed_rate = rate;
  s.requests = static_cast<int>(rate * 100.0);
  s.attainment = attainment;
  s.goodput = rate * attainment;
  s.mean_latency = 1.0;
  return s;
}

TEST(AutoscalerTest, ScaleUpOnLowAttainment) {
  Autoscaler controller(FastOptions(), /*capacity=*/10.0, /*time=*/0.0);
  const AutoscaleDecision d = controller.Observe(MakeSample(100.0, 5.0, 0.80));
  EXPECT_EQ(d.action, AutoscaleAction::kScaleUp);
  // Plans for max(observed, capacity) * headroom: capacity was overestimated, keep it.
  EXPECT_DOUBLE_EQ(d.plan_rate, 10.0 * 1.25);
  EXPECT_NE(d.reason.find("attainment"), std::string::npos);
  EXPECT_EQ(controller.stats().scale_ups, 1);
}

TEST(AutoscalerTest, ScaleUpOnHighUtilizationBeforeSloBurns) {
  Autoscaler controller(FastOptions(), 10.0, 0.0);
  // Attainment still fine, but the fleet is nearly saturated: proactive scale-up.
  const AutoscaleDecision d = controller.Observe(MakeSample(100.0, 9.0, 0.99));
  EXPECT_EQ(d.action, AutoscaleAction::kScaleUp);
  EXPECT_DOUBLE_EQ(d.plan_rate, 10.0 * 1.25);
  EXPECT_NE(d.reason.find("utilization"), std::string::npos);
}

TEST(AutoscalerTest, HysteresisBandHolds) {
  Autoscaler controller(FastOptions(), 10.0, 0.0);
  // Attainment between low and high watermarks, moderate utilization: never act.
  for (int w = 0; w < 10; ++w) {
    const AutoscaleDecision d = controller.Observe(MakeSample(100.0 + 100.0 * w, 7.0, 0.94));
    EXPECT_EQ(d.action, AutoscaleAction::kHold) << "window " << w;
  }
  EXPECT_EQ(controller.stats().scale_ups, 0);
  EXPECT_EQ(controller.stats().scale_downs, 0);
}

TEST(AutoscalerTest, CooldownSuppressesBackToBackScaleUps) {
  Autoscaler::Options options = FastOptions();
  options.cooldown = 1000.0;
  Autoscaler controller(options, 10.0, 0.0);
  EXPECT_EQ(controller.Observe(MakeSample(1000.0, 5.0, 0.5)).action, AutoscaleAction::kScaleUp);
  EXPECT_EQ(controller.Observe(MakeSample(1100.0, 5.0, 0.5)).action, AutoscaleAction::kHold);
  EXPECT_EQ(controller.stats().cooldown_suppressed, 1);
  // Past the cooldown it fires again.
  EXPECT_EQ(controller.Observe(MakeSample(2100.0, 5.0, 0.5)).action, AutoscaleAction::kScaleUp);
}

TEST(AutoscalerTest, ScaleDownNeedsConfirmationWindows) {
  Autoscaler controller(FastOptions(), 10.0, 0.0);
  // First quiet window: candidate only.
  EXPECT_EQ(controller.Observe(MakeSample(200.0, 2.0, 1.0)).action, AutoscaleAction::kHold);
  EXPECT_EQ(controller.stats().confirm_suppressed, 1);
  // Second consecutive quiet window confirms.
  const AutoscaleDecision d = controller.Observe(MakeSample(300.0, 2.0, 1.0));
  EXPECT_EQ(d.action, AutoscaleAction::kScaleDown);
  EXPECT_DOUBLE_EQ(d.plan_rate, 2.0 * 1.25);
  EXPECT_EQ(controller.stats().scale_downs, 1);
}

TEST(AutoscalerTest, ConfirmationResetsOnBusyWindow) {
  Autoscaler controller(FastOptions(), 10.0, 0.0);
  EXPECT_EQ(controller.Observe(MakeSample(200.0, 2.0, 1.0)).action, AutoscaleAction::kHold);
  // A busy window in between resets the confirmation counter.
  EXPECT_EQ(controller.Observe(MakeSample(300.0, 7.0, 0.95)).action, AutoscaleAction::kHold);
  EXPECT_EQ(controller.Observe(MakeSample(400.0, 2.0, 1.0)).action, AutoscaleAction::kHold);
  EXPECT_EQ(controller.Observe(MakeSample(500.0, 2.0, 1.0)).action, AutoscaleAction::kScaleDown);
}

TEST(AutoscalerTest, InstallPlanResetsCapacityAndCooldown) {
  Autoscaler controller(FastOptions(), 10.0, 0.0);
  controller.InstallPlan(20.0, 500.0);
  EXPECT_DOUBLE_EQ(controller.capacity(), 20.0);
  // 9 rps is 45% of the new capacity: a scale-down candidate, not a scale-up.
  const AutoscaleDecision d = controller.Observe(MakeSample(700.0, 9.0, 0.99));
  EXPECT_EQ(d.action, AutoscaleAction::kHold);
  EXPECT_EQ(controller.stats().scale_ups, 0);
  EXPECT_EQ(controller.stats().confirm_suppressed, 1);
}

TEST(AutoscalerTest, EmptyWindowNeverScalesUp) {
  Autoscaler controller(FastOptions(), 10.0, 0.0);
  WindowSample s = MakeSample(200.0, 0.0, 0.0);  // no traffic: attainment meaningless
  s.requests = 0;
  s.attainment = 1.0;
  EXPECT_EQ(controller.Observe(s).action, AutoscaleAction::kHold);
  EXPECT_EQ(controller.stats().scale_ups, 0);
}

TEST(MigrationCostTest, IdenticalPlansCostNothing) {
  placement::PlacementPlan plan;
  plan.prefill_par = {2, 1};
  plan.decode_par = {1, 1};
  plan.num_prefill = 1;
  plan.num_decode = 2;
  const MigrationCost cost = EstimateMigrationCost(
      plan, plan, model::ModelSpec::Opt13B(), cluster::ClusterSpec::PaperTestbed(), 1e6);
  EXPECT_DOUBLE_EQ(cost.kv_bytes, 0.0);
  EXPECT_DOUBLE_EQ(cost.drain_seconds, 0.0);
  EXPECT_DOUBLE_EQ(cost.gpu_seconds, 0.0);
}

TEST(MigrationCostTest, DrainScalesWithTokensAndFootprint) {
  placement::PlacementPlan from;
  from.prefill_par = {2, 1};
  from.decode_par = {1, 1};
  from.num_prefill = 1;
  from.num_decode = 2;  // 4 GPUs
  placement::PlacementPlan to = from;
  to.num_decode = 6;  // 8 GPUs
  const model::ModelSpec model = model::ModelSpec::Opt13B();
  const cluster::ClusterSpec cluster = cluster::ClusterSpec::PaperTestbed();

  const double tokens = 200000.0;
  const MigrationCost cost = EstimateMigrationCost(from, to, model, cluster, tokens);
  EXPECT_DOUBLE_EQ(cost.kv_bytes,
                   tokens * static_cast<double>(model.kv_bytes_per_token()));
  EXPECT_DOUBLE_EQ(cost.drain_seconds, cost.kv_bytes / cluster.cross_node_bandwidth);
  EXPECT_DOUBLE_EQ(cost.gpu_seconds,
                   cost.drain_seconds * (from.total_gpus() + to.total_gpus()));
  EXPECT_GT(cost.drain_seconds, 0.0);

  // Twice the resident tokens, twice the drain.
  const MigrationCost doubled = EstimateMigrationCost(from, to, model, cluster, 2.0 * tokens);
  EXPECT_DOUBLE_EQ(doubled.drain_seconds, 2.0 * cost.drain_seconds);
}

TEST(MigrationCostTest, ResidentKvTokensFollowsLittlesLaw) {
  // 4 rps * 2.5 s latency = 10 requests in flight, each holding 300 + 100/2 tokens.
  EXPECT_DOUBLE_EQ(EstimateResidentKvTokens(4.0, 2.5, 300.0, 100.0), 10.0 * 350.0);
  EXPECT_DOUBLE_EQ(EstimateResidentKvTokens(0.0, 2.5, 300.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(EstimateResidentKvTokens(4.0, 0.0, 300.0, 100.0), 0.0);
}

}  // namespace
}  // namespace distserve::serving
