// Replanning under workload drift (§4.3 "Replaning").
//
// A serving deployment planned for chatbot traffic watches its live request stream with the
// workload profiler. Mid-day, the traffic shifts to summarization-style requests (10x longer
// prompts at a lower rate). The replanner detects the drift, fits an empirical dataset from
// recent history, and recomputes the placement — this example shows the detection, the plan
// change, and the attainment before/after redeployment.
//
// --goodput-cache=PATH (env DISTSERVE_GOODPUT_CACHE fallback) persists the facade's goodput
// cache across invocations: a re-run starts warm, so the printed replan costs show disk-level
// reuse (note the cost lines then differ from a cold run's — the cache file is the point).
// --trace=PATH exports the stale-vs-replanned engine runs' per-request spans as Chrome
// trace-event JSON (two runs in one file; see DESIGN.md §14).
#include <cstdio>
#include <cstring>

#include "core/distserve.h"
#include "placement/goodput_cache_store.h"
#include "serving/replanner.h"
#include "trace/recorder.h"

int main(int argc, char** argv) {
  using namespace distserve;
  std::string cache_flag;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--goodput-cache=", 16) == 0) {
      cache_flag = argv[i] + 16;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else {
      std::fprintf(stderr, "usage: %s [--goodput-cache=PATH] [--trace=PATH]\n", argv[0]);
      return 2;
    }
  }
  if (!trace_path.empty() && !trace::kCompiledIn) {
    std::fprintf(stderr,
                 "warning: built with -DDISTSERVE_TRACE=OFF; no spans will be exported\n");
  }
  trace::Recorder recorder;

  const cluster::ClusterSpec cluster = cluster::ClusterSpec::PaperTestbed();
  const model::ModelSpec model = model::ModelSpec::Opt66B();
  const metrics::SloSpec slo{2.5, 0.15};

  const auto chat = workload::MakeShareGptLike();
  // The after-shift regime: report-drafting traffic with ~6x longer prompts than chat.
  // (Full LongBench-scale prompts at this SLO would need Algorithm-1 territory; the point
  // here is detection + replanning, so the shift stays within one node's capabilities.)
  workload::LognormalDataset::Params report_params;
  report_params.name = "reports";
  report_params.input_mu = 7.2;
  report_params.input_sigma = 0.45;
  report_params.input_min = 256;
  report_params.input_max = 4096;
  report_params.output_mu = 5.2;
  report_params.output_sigma = 0.5;
  report_params.output_min = 16;
  report_params.output_max = 512;
  const workload::LognormalDataset summarize(report_params);

  // Phase 1: plan for the chatbot regime.
  DistServeOptions options;
  options.model = model;
  options.cluster = cluster;
  options.slo = slo;
  options.traffic_rate = 4.0;
  options.dataset = chat.get();
  options.search.num_requests = 250;
  options.search.min_trace_duration = 30.0;
  options.search.max_requests = 2500;
  options.search.bisection_iters = 6;
  options.goodput_cache_path = placement::GoodputCacheStore::ResolvePath(cache_flag);
  DistServe server(options);
  std::printf("Initial plan (chatbot regime): %s\n\n", server.Plan().ToString().c_str());

  // The drifting trace: 1500 chatbot requests at 4 rps, then summarization at 1 rps.
  workload::TraceSpec spec;
  spec.rate = 4.0;
  spec.num_requests = 2500;
  spec.seed = 33;
  const workload::Trace trace =
      workload::GenerateShiftingTrace(spec, *chat, summarize, /*shift_after=*/1500,
                                      /*second_rate=*/1.0);

  // Feed the stream through the replanner.
  int replans = 0;
  double replan_time = 0.0;
  std::optional<workload::EmpiricalDataset> fitted;
  double fitted_rate = 0.0;
  serving::Replanner::Options replan_options;
  replan_options.profiler.window_size = 256;
  replan_options.profiler.drift_threshold = 0.5;
  replan_options.cooldown = 120.0;
  serving::Replanner replanner(
      replan_options,
      [&](const workload::EmpiricalDataset& dataset, double rate, double when) {
        ++replans;
        replan_time = when;
        fitted = dataset;
        fitted_rate = rate;
      });
  for (const workload::Request& request : trace) {
    replanner.Observe(request);
  }
  std::printf("Drift detected: %d replan trigger(s); first at t=%.0fs (shift began at t=%.0fs)\n",
              replans, replan_time, trace[1500].arrival_time);
  if (!fitted.has_value()) {
    std::printf("No drift detected; nothing to do.\n");
    return 0;
  }
  Rng rng(1);
  const workload::LengthSample mean = fitted->MeanLengths(rng);
  std::printf("Fitted recent window: mean input %d tokens, mean output %d, rate %.2f rps\n\n",
              mean.input_len, mean.output_len, fitted_rate);

  // Phase 2: recompute placement on the fitted workload. Replan() reuses the facade's probe
  // traces and per-config goodput memos, so only configurations whose inputs actually changed
  // (here: all of them, since the dataset changed) are re-simulated — and a replan with
  // unchanged inputs would be answered entirely from cache.
  const placement::PlacementPlan stale_plan = server.Plan();
  server.Replan(&*fitted, fitted_rate);
  const placement::PlannerResult& details = server.PlannerDetails();
  std::printf("Replanned placement (fitted regime): %s\n", server.Plan().ToString().c_str());
  std::printf("Replan cost: %d configs, %d simulated, %d cache hits, %d pruned/skipped\n",
              details.configs_evaluated, details.simulations_run, details.cache_hits,
              details.simulations_skipped);

  // A second replan with unchanged inputs never re-simulates: every needed goodput is
  // answered from the facade's persistent cache.
  server.Replan(&*fitted, fitted_rate);
  const placement::PlannerResult& warm = server.PlannerDetails();
  std::printf("Same-inputs replan: %d configs, %d simulated, %d cache hits, %d pruned/skipped\n\n",
              warm.configs_evaluated, warm.simulations_run, warm.cache_hits,
              warm.simulations_skipped);

  // Compare old vs new plan on the post-shift traffic.
  workload::TraceSpec post;
  post.rate = 1.0;
  post.num_requests = 600;
  post.seed = 34;
  const workload::Trace post_trace = workload::GenerateTrace(post, summarize);
  auto run_with = [&](const placement::PlacementPlan& plan) {
    serving::ServingConfig config;
    config.model = model;
    config.cluster = cluster;
    config.plan = plan;
    config.recorder = trace_path.empty() ? nullptr : &recorder;
    serving::ServingSystem system(std::move(config));
    return system.Run(post_trace).ComputeAttainment(slo);
  };
  const metrics::Attainment stale = run_with(stale_plan);
  const metrics::Attainment fresh = run_with(server.Plan());
  std::printf("Post-shift attainment with the stale plan: %.1f%% | with the replanned plan: %.1f%%\n",
              100.0 * stale.both, 100.0 * fresh.both);
  std::printf("(The paper notes replanning runs in seconds and weight reloads in minutes,\n"
              "well under the hourly timescale of real workload shifts.)\n");
  if (!trace_path.empty()) {
    recorder.WriteChromeJson(trace_path);
  }
  return 0;
}
