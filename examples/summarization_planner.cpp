// Capacity planning for a document-summarization service (the paper's hardest workload).
//
// LongBench-style traffic: prompts around 3-4k tokens, short summaries, a loose TTFT SLO
// (15 s) but stringent TPOT (0.15 s). This example walks the full planning workflow a service
// operator would run:
//   1. characterise the workload (dataset statistics);
//   2. search placements with both algorithms and compare their GPU bills for a target rate;
//   3. validate the chosen plan against an engine-level replay at the target rate;
//   4. show what the same GPUs buy under the vLLM-style colocated baseline.
#include <cstdio>
#include <algorithm>

#include "baselines/vllm_system.h"
#include "core/distserve.h"

int main() {
  using namespace distserve;

  const auto dataset = workload::MakeLongBenchLike();
  const cluster::ClusterSpec cluster = cluster::ClusterSpec::PaperTestbed();
  const model::ModelSpec model = model::ModelSpec::Opt66B();
  const metrics::SloSpec slo{15.0, 0.15};
  const double target_rate = 3.0;  // requests/second the service must sustain

  // 1. Workload characterisation.
  Rng rng(1);
  const workload::LengthSample mean = dataset->MeanLengths(rng);
  const double kv_gb = static_cast<double>(mean.input_len) *
                       static_cast<double>(model.kv_bytes_per_token()) / 1e9;
  std::printf("Workload: %s | mean prompt %d tokens, mean summary %d tokens\n",
              dataset->name().c_str(), mean.input_len, mean.output_len);
  std::printf("Mean KV cache per request: %.2f GB -> %.1f s on the 25 Gbps cross-node link,\n",
              kv_gb, kv_gb * 8.0 / 25.0);
  std::printf("so placement must keep transfers on NVLink (Algorithm 2 territory).\n\n");

  // 2. Placement search.
  DistServeOptions options;
  options.model = model;
  options.cluster = cluster;
  options.slo = slo;
  options.traffic_rate = target_rate;
  options.dataset = dataset.get();
  options.search.num_requests = 300;
  options.search.min_trace_duration = 40.0;
  options.search.max_requests = 4000;
  options.search.bisection_iters = 7;

  DistServe server(options);
  const placement::PlacementPlan& plan = server.Plan();
  std::printf("Chosen placement (%s): %s\n",
              server.used_high_affinity() ? "Algorithm 1" : "Algorithm 2",
              plan.ToString().c_str());
  std::printf("GPU bill for %.1f req/s: %d GPUs (%.3f req/s/GPU)\n\n", target_rate,
              plan.total_gpus(), target_rate / plan.total_gpus());

  // 3. Engine-level validation at the target rate.
  const metrics::Collector results = server.ServeGenerated(target_rate, 1200, /*seed=*/7);
  const metrics::Attainment attainment = results.ComputeAttainment(slo);
  std::printf("Validation replay @ %.1f req/s: attainment both=%.1f%% (TTFT %.1f%%, TPOT %.1f%%)\n",
              target_rate, 100.0 * attainment.both, 100.0 * attainment.ttft_only,
              100.0 * attainment.tpot_only);
  std::printf("P90 TTFT %.2f s (SLO %.1f s) | P90 TPOT %.0f ms (SLO %.0f ms)\n",
              results.TtftPercentile(90), slo.ttft, 1e3 * results.TpotPercentile(90),
              1e3 * slo.tpot);
  std::printf("Lifecycle: %s\n\n", results.ComputeBreakdown().ToString().c_str());

  // 4. The colocated baseline on the same GPU budget.
  const int vllm_tp = 4;  // the paper's vLLM parallelism for OPT-66B
  const int vllm_instances = std::max(1, plan.total_gpus() / vllm_tp);
  baselines::VllmConfig vllm_config;
  vllm_config.model = model;
  vllm_config.cluster = cluster;
  vllm_config.par = {vllm_tp, 1};
  vllm_config.num_instances = vllm_instances;
  baselines::VllmSystem vllm(std::move(vllm_config));
  workload::TraceSpec spec;
  spec.rate = target_rate;
  spec.num_requests = 1200;
  spec.seed = 7;
  const metrics::Attainment vllm_attainment =
      vllm.Run(workload::GenerateTrace(spec, *dataset)).ComputeAttainment(slo);
  std::printf("vLLM baseline (tp=%d x %d = %d GPUs) at the same rate: both=%.1f%% "
              "(TTFT %.1f%%, TPOT %.1f%%)\n",
              vllm_tp, vllm_instances, vllm_tp * vllm_instances, 100.0 * vllm_attainment.both,
              100.0 * vllm_attainment.ttft_only, 100.0 * vllm_attainment.tpot_only);
  std::printf("Long prompts stall colocated decoding for over a second at a time; the gap\n"
              "between the systems opens at the saturation knee (sweep it with\n"
              "bench_fig9_code_summarization).\n");
  return 0;
}
