// Quickstart: plan a placement for a chatbot workload and serve traffic with it.
//
// Mirrors the paper's headline scenario: OPT-13B, ShareGPT-like requests, TTFT <= 0.2 s and
// TPOT <= 0.1 s (Table 1), on a 4x8xA100 cluster with slow (25 Gbps) cross-node links. The
// program (1) runs the placement search, (2) replays a Poisson trace through the engine-level
// runtime, and (3) reports SLO attainment, latency percentiles, and the lifecycle breakdown.
#include <cstdio>

#include "core/distserve.h"

int main() {
  using namespace distserve;

  const auto dataset = workload::MakeShareGptLike();

  DistServeOptions options;
  options.model = model::ModelSpec::Opt13B();
  options.cluster = cluster::ClusterSpec::PaperTestbed();
  options.slo = metrics::SloSpec{/*ttft=*/0.2, /*tpot=*/0.1};
  options.attainment_target = 0.9;
  options.traffic_rate = 8.0;  // expected offered load, requests/second
  options.dataset = dataset.get();

  DistServe server(options);

  const placement::PlacementPlan& plan = server.Plan();
  std::printf("Model:      %s on %s\n", options.model.name.c_str(),
              options.cluster.gpu.name.c_str());
  std::printf("Placement:  %s\n", plan.ToString().c_str());
  std::printf("Algorithm:  %s\n\n",
              server.used_high_affinity() ? "high node-affinity (Alg. 1)"
                                          : "low node-affinity (Alg. 2)");

  const int kRequests = 2000;
  metrics::Collector results = server.ServeGenerated(options.traffic_rate, kRequests,
                                                     /*seed=*/2024);

  const metrics::Attainment attainment = results.ComputeAttainment(options.slo);
  std::printf("Served %zu requests at %.1f req/s (%.2f req/s/GPU)\n", results.count(),
              options.traffic_rate, options.traffic_rate / plan.total_gpus());
  std::printf("SLO attainment: both=%.1f%%  TTFT-only=%.1f%%  TPOT-only=%.1f%%\n",
              100.0 * attainment.both, 100.0 * attainment.ttft_only,
              100.0 * attainment.tpot_only);
  std::printf("TTFT  p50/p90/p99: %.0f / %.0f / %.0f ms\n", 1e3 * results.TtftPercentile(50),
              1e3 * results.TtftPercentile(90), 1e3 * results.TtftPercentile(99));
  std::printf("TPOT  p50/p90/p99: %.1f / %.1f / %.1f ms\n", 1e3 * results.TpotPercentile(50),
              1e3 * results.TpotPercentile(90), 1e3 * results.TpotPercentile(99));
  std::printf("Lifecycle breakdown: %s\n", results.ComputeBreakdown().ToString().c_str());
  return 0;
}
