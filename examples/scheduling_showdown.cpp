// Scheduling-policy showdown: the §2.2 design space on one workload.
//
// Four ways to serve the same ShareGPT-like traffic on two A100s:
//   1. vLLM-style colocated, prefill-priority (prefill iterations stall decodes);
//   2. Orca-style colocated, mixed batching (prefill and decode share a step);
//   3. SARATHI-style colocated, chunked prefill piggybacked on decodes;
//   4. DistServe: disaggregated prefill + decode instance.
// Prints TTFT/TPOT percentiles and SLO attainment for each, making the §2.2 trade-offs
// concrete: chunking trades TTFT for TPOT; mixing trades both; disaggregation decouples them.
#include <cstdio>

#include "baselines/vllm_system.h"
#include "serving/serving_system.h"
#include "workload/generator.h"

int main() {
  using namespace distserve;
  using SchedulingMode = engine::ColocatedInstance::Options::SchedulingMode;

  const model::ModelSpec model = model::ModelSpec::Opt13B();
  const cluster::ClusterSpec cluster = cluster::ClusterSpec::PaperTestbed();
  const metrics::SloSpec slo{0.2, 0.1};

  const auto dataset = workload::MakeShareGptLike();
  workload::TraceSpec spec;
  spec.rate = 24.0;  // 3 req/s per GPU on 8 GPUs: hot enough that scheduling policy matters
  spec.num_requests = 4000;
  spec.seed = 55;
  const workload::Trace trace = workload::GenerateTrace(spec, *dataset);

  std::printf("Workload: %s at %.1f req/s on 8 GPUs | SLO: TTFT<=%.2fs TPOT<=%.2fs\n\n",
              dataset->name().c_str(), spec.rate, slo.ttft, slo.tpot);
  std::printf("%-22s %10s %10s %10s %10s %12s\n", "policy", "TTFT p50", "TTFT p90",
              "TPOT p50", "TPOT p90", "attainment");

  auto report = [&](const char* name, const metrics::Collector& results) {
    std::printf("%-22s %8.0fms %8.0fms %8.1fms %8.1fms %11.1f%%\n", name,
                1e3 * results.TtftPercentile(50), 1e3 * results.TtftPercentile(90),
                1e3 * results.TpotPercentile(50), 1e3 * results.TpotPercentile(90),
                100.0 * results.ComputeAttainment(slo).both);
  };

  auto run_colocated = [&](SchedulingMode mode) {
    baselines::VllmConfig config;
    config.model = model;
    config.cluster = cluster;
    config.par = {1, 1};
    config.num_instances = 8;
    config.engine_options.mode = mode;
    config.engine_options.chunk_size = 256;
    baselines::VllmSystem system(std::move(config));
    return system.Run(trace);
  };

  report("vLLM (prefill-prio)", run_colocated(SchedulingMode::kPrefillPriority));
  report("Orca (mixed batch)", run_colocated(SchedulingMode::kMixed));
  report("SARATHI (chunked)", run_colocated(SchedulingMode::kChunked));

  serving::ServingConfig ds_config;
  ds_config.model = model;
  ds_config.cluster = cluster;
  ds_config.plan.prefill_par = {1, 1};
  ds_config.plan.decode_par = {1, 1};
  ds_config.plan.num_prefill = 3;
  ds_config.plan.num_decode = 5;
  ds_config.plan.intra_node_transfers = true;
  serving::ServingSystem distserve_system(ds_config);
  report("DistServe (3P+5D)", distserve_system.Run(trace));

  std::printf(
      "\nReading the table: prefill-priority favours TTFT at TPOT's expense; chunking does\n"
      "the opposite; mixed batching sits between. Disaggregation decouples the two metrics\n"
      "and lets the prefill:decode GPU ratio be chosen per workload (§2.2, §3).\n");
  return 0;
}
