// Microbenchmarks of the engine step loops — the per-step cost of the DES instances
// (decode lanes, prefill batch launches, the colocated baseline) and of the fast placement
// simulator. These loops dominate every end-to-end figure run; the perf-smoke CI job tracks
// them, and the /cache:0 vs /cache:1 variants isolate what the StepTimeCache contributes
// (results are bit-identical either way; only wall time may differ).
//
// When the DISTSERVE_PROF_JSON environment variable names a file and the build has
// DISTSERVE_PROF=ON, the accumulated zone profile is written there after the run.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "cluster/gpu_spec.h"
#include "common/prof.h"
#include "engine/colocated_instance.h"
#include "engine/decode_instance.h"
#include "engine/prefill_instance.h"
#include "model/step_time_cache.h"
#include "placement/fast_sim.h"
#include "simcore/simulator.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace distserve {
namespace {

workload::Trace MakeTrace(double rate, int num_requests, uint64_t seed) {
  const auto dataset = workload::MakeDatasetByName("sharegpt");
  workload::TraceSpec spec;
  spec.rate = rate;
  spec.num_requests = num_requests;
  spec.seed = seed;
  return workload::GenerateTrace(spec, *dataset);
}

// Sustained continuous-batching decode: 256 requests with ShareGPT-like lengths, admitted
// and completing continuously. The per-step costs under test: batch formation (O(1) context
// accounting), one step-time evaluation, one event schedule/fire, survivor compaction.
void BM_DecodeEngineSteps(benchmark::State& state) {
  const model::LatencyModel lm(model::ModelSpec::Opt13B(), {1, 1},
                               cluster::GpuSpec::A100_80GB());
  const workload::Trace trace = MakeTrace(/*rate=*/8.0, /*num_requests=*/1024, /*seed=*/7);
  engine::DecodeInstance::Options options;
  options.enable_step_time_cache = state.range(0) != 0;
  int64_t tokens = 0;
  for (auto _ : state) {
    simcore::Simulator sim;
    engine::DecodeInstance instance(&sim, lm, 1 << 20, options, 0);
    std::vector<std::unique_ptr<engine::RequestState>> states;
    states.reserve(trace.size());
    for (const workload::Request& req : trace) {
      if (req.output_len < 2) {
        continue;
      }
      states.push_back(std::make_unique<engine::RequestState>(req));
      instance.Submit(states.back().get());
    }
    sim.Run();
    tokens = instance.tokens_generated();
    benchmark::DoNotOptimize(tokens);
  }
  state.SetItemsProcessed(state.iterations() * tokens);
  state.counters["steps"] = static_cast<double>(tokens);
}
BENCHMARK(BM_DecodeEngineSteps)->Arg(0)->Arg(1)->ArgName("cache");


// Steady-state decode lanes at a fixed small batch: 8 identical requests join at t=0 and
// step together for 2048 generated tokens each across pp=2 lanes. At this lane batch size
// the per-step overheads under test (event scheduling, batch re-formation, context
// accounting) are not drowned out by per-token bookkeeping, so this is the cleanest view of
// the step loop itself.
void BM_DecodeSteadyStateSteps(benchmark::State& state) {
  const model::LatencyModel lm(model::ModelSpec::Opt13B(), {1, 2},
                               cluster::GpuSpec::A100_80GB());
  workload::FixedDataset dataset(/*input_len=*/256, /*output_len=*/2048);
  workload::TraceSpec spec;
  spec.rate = 1000.0;
  spec.num_requests = 8;
  spec.seed = 3;
  const workload::Trace trace = workload::GenerateTrace(spec, dataset);
  engine::DecodeInstance::Options options;
  options.enable_step_time_cache = state.range(0) != 0;
  int64_t tokens = 0;
  for (auto _ : state) {
    simcore::Simulator sim;
    engine::DecodeInstance instance(&sim, lm, 1 << 20, options, 0);
    std::vector<std::unique_ptr<engine::RequestState>> states;
    states.reserve(trace.size());
    for (const workload::Request& req : trace) {
      states.push_back(std::make_unique<engine::RequestState>(req));
      instance.Submit(states.back().get());
    }
    sim.Run();
    tokens = instance.tokens_generated();
    benchmark::DoNotOptimize(tokens);
  }
  state.SetItemsProcessed(state.iterations() * tokens);
}
BENCHMARK(BM_DecodeSteadyStateSteps)->Arg(0)->Arg(1)->ArgName("cache");

// Prefill batch launches through the L_m batching policy and the pipeline-bubble recurrence
// (pp=2 exercises the bubble path). KV is released as soon as a batch completes, as the
// serving layer does once the decode side pulls.
void BM_PrefillEngineBatches(benchmark::State& state) {
  const model::LatencyModel lm(model::ModelSpec::Opt13B(), {1, 2},
                               cluster::GpuSpec::A100_80GB());
  const workload::Trace trace = MakeTrace(/*rate=*/64.0, /*num_requests=*/512, /*seed=*/11);
  engine::PrefillInstance::Options options;
  options.enable_step_time_cache = state.range(0) != 0;
  int64_t batches = 0;
  for (auto _ : state) {
    simcore::Simulator sim;
    engine::PrefillInstance instance(&sim, lm, 1 << 20, options, 0);
    instance.set_on_complete(
        [&instance](engine::RequestState* r) { instance.ReleaseKv(r); });
    std::vector<std::unique_ptr<engine::RequestState>> states;
    states.reserve(trace.size());
    for (const workload::Request& req : trace) {
      states.push_back(std::make_unique<engine::RequestState>(req));
      engine::RequestState* rs = states.back().get();
      sim.ScheduleAt(req.arrival_time, [&instance, rs] { instance.Enqueue(rs); });
    }
    sim.Run();
    batches = instance.batches_launched();
    benchmark::DoNotOptimize(batches);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(trace.size()));
  state.counters["batches"] = static_cast<double>(batches);
}
BENCHMARK(BM_PrefillEngineBatches)->Arg(0)->Arg(1)->ArgName("cache");

// The colocated (vLLM-style) baseline: mixed prefill+decode iterations with
// prefill-priority scheduling.
void BM_ColocatedEngineSteps(benchmark::State& state) {
  const model::LatencyModel lm(model::ModelSpec::Opt13B(), {1, 1},
                               cluster::GpuSpec::A100_80GB());
  const workload::Trace trace = MakeTrace(/*rate=*/8.0, /*num_requests=*/256, /*seed=*/13);
  engine::ColocatedInstance::Options options;
  options.enable_step_time_cache = state.range(0) != 0;
  int64_t tokens = 0;
  for (auto _ : state) {
    simcore::Simulator sim;
    engine::ColocatedInstance instance(&sim, lm, 1 << 20, options, 0);
    std::vector<std::unique_ptr<engine::RequestState>> states;
    states.reserve(trace.size());
    for (const workload::Request& req : trace) {
      states.push_back(std::make_unique<engine::RequestState>(req));
      engine::RequestState* rs = states.back().get();
      sim.ScheduleAt(req.arrival_time, [&instance, rs] { instance.Enqueue(rs); });
    }
    sim.Run();
    tokens = instance.tokens_generated();
    benchmark::DoNotOptimize(tokens);
  }
  state.SetItemsProcessed(state.iterations() * tokens);
}
BENCHMARK(BM_ColocatedEngineSteps)->Arg(0)->Arg(1)->ArgName("cache");

// The fast placement simulator over a full disaggregated pipeline — the inner loop of every
// goodput probe in Algorithm 1/2. The cache variant shares one memo per phase model across
// the whole simulation, as the placement search does across its probes.
void BM_FastSimDisaggregated(benchmark::State& state) {
  const model::LatencyModel lm(model::ModelSpec::Opt13B(), {1, 1},
                               cluster::GpuSpec::A100_80GB());
  const workload::Trace trace = MakeTrace(/*rate=*/12.0, /*num_requests=*/2000, /*seed=*/17);
  model::StepTimeCache prefill_cache(&lm);
  model::StepTimeCache decode_cache(&lm);
  placement::DisaggregatedFastConfig config;
  config.num_prefill = 2;
  config.num_decode = 2;
  config.decode_kv_capacity_tokens = 1 << 20;
  if (state.range(0) != 0) {
    config.prefill_step_cache = &prefill_cache;
    config.decode_step_cache = &decode_cache;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::SimulateDisaggregated(lm, lm, trace, config));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_FastSimDisaggregated)->Arg(0)->Arg(1)->ArgName("cache");

}  // namespace
}  // namespace distserve

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (const char* path = std::getenv("DISTSERVE_PROF_JSON");
      path != nullptr && *path != '\0') {
    distserve::prof::WriteJsonFile(path);
  }
  return 0;
}
