// fig_scenarios (extension beyond the paper's exhibits): when does disaggregation win?
//
// The paper's Figure 8 compares DistServe against colocated vLLM on single-tenant Poisson
// traffic with cold KV caches — the regime most favourable to disaggregation. "Beyond the
// Buzz" and LLMServingSim 2.0 (PAPERS.md) argue the answer changes under realistic traffic:
// shared-system-prompt prefix caching shrinks prefill work (weakening the interference that
// motivates disaggregation), Sarathi-style chunked prefill bounds interference without paying
// the transfer/queueing costs of two pools, and multi-tenant traffic with abandonment shifts
// the metric to per-class goodput. This bench sweeps exactly that grid:
//
//   {DistServe 2P+2D, vLLM-colocated, chunked-prefill colocated}
//     x prefix-cache hit rate {0, 0.3, 0.7}
//     x {single-tenant, multi-tenant (priority classes + cancels + deadlines)}
//
// on equal GPU counts, and reports joint SLO attainment, goodput, per-class attainment, and
// the cancelled/timed-out/preempted outcome counters. A planner-fidelity search section
// reports the per-GPU goodput each family achieves with its knobs tuned (Algorithm 2 for
// disaggregation, tp search for vLLM++, tp x chunk-budget search for chunked).
//
// The exit code asserts the headline findings so CI gates on them:
//   CHUNKED-CLOSES-GAP:  the disagg-minus-chunked attainment gap at hit 0.7 is no larger
//                        than at hit 0 (single-tenant arm);
//   DISAGG-WINS-COLD:    with cold caches (hit 0) under a 2x-tightened TTFT SLO, disagg
//                        attains at least as much as both colocated families;
//   PRIORITY-PROTECTS:   in every multi-tenant cell, the high-priority class attains at
//                        least as much as the same requests do in a counterfactual run of
//                        the identical annotated trace with priorities stripped (priority
//                        scheduling + preemption must never leave the interactive class
//                        worse off than undifferentiated mixing).
// Invariants whose cells are excluded by a flag-restricted grid print SKIP and do not fail.
//
// Flags: --smoke (reduced trace for CI), --json=PATH (artifact), --trace=PATH (per-request
// spans including the preempt/cancel/timeout span kinds), --goodput-cache=PATH (persist the
// search section's planner simulations; cache accounting stays JSON-only so warm and cold
// stdout are byte-identical), --shards=N (grid cells fan out across workers; stdout is
// byte-identical at any N), and the scenario knobs:
//   --prefix-hit=F     restrict the hit-rate axis to {F}
//   --chunk-budget=N   per-step token budget of the chunked system (default 512)
//   --tenants=F        restrict the tenant axis to {F} (0 = single-tenant only; F > 0 = one
//                      multi-tenant arm with high-priority fraction F)
// Every knob has a default that reproduces the default grid, and two runs with the same
// flags must be byte-identical on stdout (the determinism CI job diffs double runs, shard
// counts, and cache modes for each knob).
#include <cmath>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_common.h"
#include "workload/scenario.h"

namespace distserve::bench {
namespace {

enum class System { kDisagg = 0, kVllm = 1, kChunked = 2 };

const char* SystemName(System s) {
  switch (s) {
    case System::kDisagg:
      return "disagg";
    case System::kVllm:
      return "vllm";
    case System::kChunked:
      return "chunked";
  }
  return "?";
}

struct Cell {
  double hit = 0.0;          // prefix-cache hit rate
  double tenant_frac = 0.0;  // high-priority fraction; 0 = single-tenant
  System system = System::kDisagg;
};

struct CellResult {
  Cell cell;
  metrics::Attainment attainment;       // all requests
  metrics::Attainment tight;            // TTFT SLO halved (the DISAGG-WINS-COLD view)
  metrics::Attainment high;             // priority-1 requests only (multi cells)
  metrics::Attainment low;              // priority-0 requests only
  double high_mixed = 0.0;              // the hi-class ids' attainment with priorities
                                        // stripped (the PRIORITY-PROTECTS counterfactual)
  double goodput = 0.0;                 // req/s within both SLOs
  metrics::ScenarioOutcomeStats stats;  // cancelled / timed-out / preempted
  workload::ScenarioStats trace_stats;  // what the scenario passes annotated
};

// Joint-SLO attainment of a fixed id set, with never-completed members in the denominator —
// how the multi-tenant cells score the same requests across the priority-on and
// priorities-stripped runs.
double AttainmentForIds(const metrics::Collector& results, const std::vector<char>& in_set,
                        const metrics::SloSpec& slo) {
  auto member = [&in_set](workload::RequestId id) {
    return id >= 0 && static_cast<size_t>(id) < in_set.size() && in_set[id] != 0;
  };
  int64_t total = 0;
  int64_t both = 0;
  for (const metrics::RequestRecord& r : results.records()) {
    if (!member(r.id)) {
      continue;
    }
    ++total;
    if (r.Ttft() <= slo.ttft && r.Tpot() <= slo.tpot) {
      ++both;
    }
  }
  for (const auto* failed :
       {&results.lost_records(), &results.cancelled_records(), &results.timed_out_records()}) {
    for (const metrics::RequestRecord& r : *failed) {
      if (member(r.id)) {
        ++total;
      }
    }
  }
  return total > 0 ? static_cast<double>(both) / static_cast<double>(total) : 0.0;
}

// Fixed 4-GPU deployments (the fig13 fault-sweep topology for DistServe; both colocated
// families replicate tp=1 to the same GPU count) so every cell compares equal silicon.
serving::ServingConfig DisaggConfig(const Application& app, const cluster::ClusterSpec& cluster) {
  serving::ServingConfig config;
  config.model = app.model;
  config.cluster = cluster;
  config.plan.prefill_par = {1, 1};
  config.plan.decode_par = {1, 1};
  config.plan.num_prefill = 2;
  config.plan.num_decode = 2;
  config.plan.intra_node_transfers = true;
  return config;
}

metrics::Collector RunCell(const Application& app, const cluster::ClusterSpec& cluster,
                           const workload::Trace& trace, System system, int64_t chunk_budget,
                           trace::Recorder* recorder) {
  switch (system) {
    case System::kDisagg: {
      serving::ServingConfig config = DisaggConfig(app, cluster);
      config.recorder = recorder;
      serving::ServingSystem sys(std::move(config));
      return sys.Run(trace);
    }
    case System::kVllm:
      return MakeVllmRunner(app.model, cluster, /*tp=*/1, /*num_instances=*/4, {},
                            recorder)(trace);
    case System::kChunked: {
      engine::ColocatedInstance::Options options;
      options.mode = engine::ColocatedInstance::Options::SchedulingMode::kChunked;
      options.chunk_budget = chunk_budget;
      return MakeVllmRunner(app.model, cluster, /*tp=*/1, /*num_instances=*/4, options,
                            recorder)(trace);
    }
  }
  return {};
}

// Annotates a copy of the base trace for one grid cell. The scenario passes draw from RNG
// streams disjoint from the generator's, so every cell sees the same arrivals and lengths.
workload::Trace AnnotateTrace(const workload::Trace& base, const Cell& cell, uint64_t seed,
                              double timeout) {
  workload::Trace trace = base;
  if (cell.hit > 0.0) {
    workload::PrefixCacheSpec prefix;
    prefix.hit_rate = cell.hit;
    prefix.prefix_len = 256;
    prefix.seed = seed;
    workload::ApplyPrefixCache(&trace, prefix);
  }
  if (cell.tenant_frac > 0.0) {
    workload::TenantSpec tenants;
    tenants.high_priority_fraction = cell.tenant_frac;
    tenants.seed = seed;
    workload::ApplyTenantClasses(&trace, tenants);
    workload::CancellationSpec cancels;
    cancels.cancel_rate = 0.05;
    cancels.cancel_after_mean = 2.0;
    cancels.timeout = timeout;
    cancels.seed = seed;
    workload::ApplyCancellations(&trace, cancels);
  }
  return trace;
}

// Planner-fidelity per-GPU goodput search for each family (the "tuned knobs" view that the
// grid's fixed deployments cannot give). Prints values only — planner cost accounting and
// cache hits stay in the JSON artifact so warm-cache stdout is byte-identical to cold.
void RunSearchSection(const Application& app, const cluster::ClusterSpec& cluster, bool smoke,
                      placement::GoodputCache* goodput_cache, PlannerAccounting* accounting,
                      std::string* json) {
  const auto dataset = workload::MakeDatasetByName(app.dataset_name);
  placement::PlannerInputs inputs = MakePlannerInputs(app, cluster, dataset.get(), 4.0);
  inputs.goodput_cache = goodput_cache;
  if (smoke) {
    inputs.search.num_requests = 150;
    inputs.search.min_trace_duration = 20.0;
    inputs.search.max_requests = 1500;
    inputs.search.bisection_iters = 5;
  }
  std::printf("\n-- per-GPU goodput with tuned knobs (planner fidelity, hit=0) --\n");
  const placement::PlannerResult planned = placement::LowNodeAffinityPlacement(inputs);
  accounting->Add(planned);
  std::printf("  disagg  plan=%s per-gpu=%.3f\n", planned.plan.ToString().c_str(),
              planned.plan.per_gpu_goodput());
  const baselines::ColocatedSearchResult vllm = baselines::FindBestColocatedConfig(inputs);
  std::printf("  vllm++  tp=%d per-gpu=%.3f\n", vllm.par.tp, vllm.per_gpu);
  const baselines::ChunkedSearchResult chunked = baselines::FindBestChunkedConfig(inputs);
  std::printf("  chunked tp=%d budget=%lld per-gpu=%.3f\n", chunked.par.tp,
              static_cast<long long>(chunked.chunk_budget), chunked.per_gpu);
  char line[256];
  std::snprintf(line, sizeof line,
                "  \"search\": {\"disagg_per_gpu\": %.6f, \"vllm_per_gpu\": %.6f, "
                "\"chunked_per_gpu\": %.6f, \"chunked_budget\": %lld},\n",
                planned.plan.per_gpu_goodput(), vllm.per_gpu, chunked.per_gpu,
                static_cast<long long>(chunked.chunk_budget));
  json->append(line);
}

const CellResult* FindCell(const std::vector<CellResult>& results, double hit,
                           double tenant_frac, System system) {
  for (const CellResult& r : results) {
    if (r.cell.hit == hit && r.cell.tenant_frac == tenant_frac && r.cell.system == system) {
      return &r;
    }
  }
  return nullptr;
}

int Main(int argc, char** argv) {
  const WallTimer timer;
  CommonFlags flags;
  if (!ParseCommonFlags(argc, argv,
                        kFlagSmoke | kFlagJson | kFlagGoodputCache | kFlagTrace | kFlagShards |
                            kFlagPrefixHit | kFlagChunkBudget | kFlagTenants,
                        &flags)) {
    return 2;
  }
  const bool smoke = flags.smoke;
  const int64_t chunk_budget = flags.chunk_budget > 0 ? flags.chunk_budget : 512;
  if (!flags.trace_path.empty() && !trace::kCompiledIn) {
    std::fprintf(stderr,
                 "warning: built with -DDISTSERVE_TRACE=OFF; no spans will be exported\n");
  }
  trace::Recorder recorder;
  trace::Recorder* rec = flags.trace_path.empty() ? nullptr : &recorder;
  // A shared recorder would interleave spans from concurrent cells; tracing stays serial.
  const std::unique_ptr<ThreadPool> pool_owner =
      rec == nullptr ? MakeSweepPool(flags.shards) : nullptr;
  ThreadPool* pool = pool_owner.get();

  const Application app = ChatbotOpt13B();
  const cluster::ClusterSpec cluster = cluster::ClusterSpec::PaperTestbed();
  const auto dataset = workload::MakeDatasetByName(app.dataset_name);
  workload::TraceSpec spec;
  spec.rate = 9.0;
  spec.num_requests = smoke ? 400 : 2000;
  spec.seed = 137;
  const workload::Trace base_trace = workload::GenerateTrace(spec, *dataset);
  const double timeout = 20.0;  // completion deadline in the multi-tenant arm

  // The grid axes; a scenario flag restricts its axis to the given value.
  std::vector<double> hits = {0.0, 0.3, 0.7};
  if (flags.prefix_hit >= 0.0) {
    hits = {flags.prefix_hit};
  }
  std::vector<double> tenant_fracs = {0.0, 0.25};
  if (flags.tenants >= 0.0) {
    tenant_fracs = {flags.tenants};
  }
  const System systems[] = {System::kDisagg, System::kVllm, System::kChunked};

  std::vector<Cell> cells;
  for (double hit : hits) {
    for (double frac : tenant_fracs) {
      for (System system : systems) {
        cells.push_back({hit, frac, system});
      }
    }
  }

  std::printf(
      "fig_scenarios: prefix caching x tenancy x scheduler (chatbot-13b, 4 GPUs each, "
      "%d requests, chunk budget %lld)\n",
      static_cast<int>(base_trace.size()), static_cast<long long>(chunk_budget));
  std::printf("%-5s %-8s %-8s %8s %8s %8s %9s %7s %8s %8s %8s %8s\n", "hit", "tenants",
              "system", "both", "ttft", "tpot", "goodput", "cancel", "timeout", "preempt",
              "hi-both", "lo-both");

  // Every cell is an independent simulation; fan them across the sweep driver and print rows
  // afterward in grid order so stdout is byte-identical at any --shards value.
  std::vector<std::function<CellResult()>> tasks;
  tasks.reserve(cells.size());
  for (const Cell& cell : cells) {
    tasks.push_back([&app, &cluster, &base_trace, &spec, cell, chunk_budget, timeout, rec] {
      const workload::Trace trace = AnnotateTrace(base_trace, cell, spec.seed, timeout);
      const metrics::Collector results =
          RunCell(app, cluster, trace, cell.system, chunk_budget, rec);
      CellResult out;
      out.cell = cell;
      out.attainment = results.ComputeAttainment(app.slo);
      out.tight = results.ComputeAttainment({app.slo.ttft * 0.5, app.slo.tpot});
      out.high = results.ComputeAttainmentForPriority(app.slo, 1);
      out.low = results.ComputeAttainmentForPriority(app.slo, 0);
      out.goodput = results.GoodputUnderSlo(app.slo);
      out.stats = results.scenario_stats();
      out.trace_stats = workload::ComputeScenarioStats(trace);
      if (cell.tenant_frac > 0.0) {
        // Counterfactual: the identical traffic (hits, cancels, deadlines) with priorities
        // stripped — what the high-priority requests attain under undifferentiated mixing.
        std::vector<char> is_high;
        workload::Trace mixed = trace;
        for (workload::Request& r : mixed) {
          if (r.id >= 0 && static_cast<size_t>(r.id) >= is_high.size()) {
            is_high.resize(static_cast<size_t>(r.id) + 1, 0);
          }
          if (r.priority != 0 && r.id >= 0) {
            is_high[r.id] = 1;
          }
          r.priority = 0;
        }
        const metrics::Collector mixed_results =
            RunCell(app, cluster, mixed, cell.system, chunk_budget, rec);
        out.high_mixed = AttainmentForIds(mixed_results, is_high, app.slo);
      }
      return out;
    });
  }
  const std::vector<CellResult> results =
      placement::RunSweepTasks<CellResult>(pool, std::move(tasks));

  for (const CellResult& r : results) {
    char hi[16];
    char lo[16];
    if (r.cell.tenant_frac > 0.0) {
      std::snprintf(hi, sizeof hi, "%7.1f%%", 100.0 * r.high.both);
      std::snprintf(lo, sizeof lo, "%7.1f%%", 100.0 * r.low.both);
    } else {
      std::snprintf(hi, sizeof hi, "%8s", "-");
      std::snprintf(lo, sizeof lo, "%8s", "-");
    }
    std::printf("%-5.2f %-8.2f %-8s %7.1f%% %7.1f%% %7.1f%% %9.3f %7lld %8lld %8lld %s %s\n",
                r.cell.hit, r.cell.tenant_frac, SystemName(r.cell.system),
                100.0 * r.attainment.both, 100.0 * r.attainment.ttft_only,
                100.0 * r.attainment.tpot_only, r.goodput,
                static_cast<long long>(r.stats.requests_cancelled),
                static_cast<long long>(r.stats.requests_timed_out),
                static_cast<long long>(r.stats.decode_preemptions), hi, lo);
  }

  // --- Exit-code invariants (see file header). ---
  const double kEps = 0.02;  // 2% attainment slack for small-sample noise

  // CHUNKED-CLOSES-GAP: needs the single-tenant arm at the lowest and highest default hits.
  int gap_result = -1;  // -1 skip, 0 fail, 1 pass
  {
    const double lo_hit = hits.front();
    const double hi_hit = hits.back();
    const CellResult* d0 = FindCell(results, lo_hit, 0.0, System::kDisagg);
    const CellResult* c0 = FindCell(results, lo_hit, 0.0, System::kChunked);
    const CellResult* d1 = FindCell(results, hi_hit, 0.0, System::kDisagg);
    const CellResult* c1 = FindCell(results, hi_hit, 0.0, System::kChunked);
    if (hi_hit > lo_hit && d0 != nullptr && c0 != nullptr && d1 != nullptr && c1 != nullptr) {
      const double gap_cold = d0->attainment.both - c0->attainment.both;
      const double gap_warm = d1->attainment.both - c1->attainment.both;
      gap_result = gap_warm <= gap_cold + kEps ? 1 : 0;
      std::printf("CHUNKED-CLOSES-GAP: %s (disagg-chunked gap %.1f%% at hit %.2f -> %.1f%% "
                  "at hit %.2f)\n",
                  gap_result == 1 ? "PASS" : "FAIL", 100.0 * gap_cold, lo_hit,
                  100.0 * gap_warm, hi_hit);
    } else {
      std::printf("CHUNKED-CLOSES-GAP: SKIP (needs two hit rates and the single-tenant arm)\n");
    }
  }

  // DISAGG-WINS-COLD: hit 0, single-tenant, TTFT SLO halved.
  int cold_result = -1;
  {
    const CellResult* d = FindCell(results, 0.0, 0.0, System::kDisagg);
    const CellResult* v = FindCell(results, 0.0, 0.0, System::kVllm);
    const CellResult* c = FindCell(results, 0.0, 0.0, System::kChunked);
    if (d != nullptr && v != nullptr && c != nullptr) {
      cold_result = (d->tight.both + kEps >= v->tight.both &&
                     d->tight.both + kEps >= c->tight.both)
                        ? 1
                        : 0;
      std::printf("DISAGG-WINS-COLD: %s (tight-TTFT attainment disagg=%.1f%% vllm=%.1f%% "
                  "chunked=%.1f%%)\n",
                  cold_result == 1 ? "PASS" : "FAIL", 100.0 * d->tight.both,
                  100.0 * v->tight.both, 100.0 * c->tight.both);
    } else {
      std::printf("DISAGG-WINS-COLD: SKIP (needs hit 0 and the single-tenant arm)\n");
    }
  }

  // PRIORITY-PROTECTS: per multi cell, the high-priority class vs the same requests in the
  // priorities-stripped counterfactual run of the identical annotated trace.
  int priority_result = -1;
  {
    bool any = false;
    bool ok = true;
    for (const CellResult& r : results) {
      if (r.cell.tenant_frac <= 0.0) {
        continue;
      }
      any = true;
      if (r.high.both + kEps < r.high_mixed) {
        ok = false;
        std::printf("  priority regression: %s hit=%.2f hi=%.1f%% < mixed=%.1f%%\n",
                    SystemName(r.cell.system), r.cell.hit, 100.0 * r.high.both,
                    100.0 * r.high_mixed);
      }
    }
    if (any) {
      priority_result = ok ? 1 : 0;
      std::printf("PRIORITY-PROTECTS: %s (high-priority attainment vs the priorities-"
                  "stripped counterfactual, all multi-tenant cells)\n",
                  ok ? "PASS" : "FAIL");
    } else {
      std::printf("PRIORITY-PROTECTS: SKIP (needs the multi-tenant arm)\n");
    }
  }

  // --- Search section (planner fidelity; goodput cache persists across processes). ---
  std::string json = "{\n";
  json += "  \"bench\": \"fig_scenarios\",\n";
  json += "  \"cells\": [\n";
  for (size_t i = 0; i < results.size(); ++i) {
    const CellResult& r = results[i];
    char line[512];
    std::snprintf(
        line, sizeof line,
        "    {\"hit\": %.2f, \"tenants\": %.2f, \"system\": \"%s\", \"both\": %.6f, "
        "\"goodput\": %.6f, \"hi_both\": %.6f, \"hi_mixed\": %.6f, \"cancelled\": %lld, "
        "\"timed_out\": %lld, "
        "\"preempted\": %lld, \"prefix_hits\": %d, \"cached_tokens\": %lld}%s\n",
        r.cell.hit, r.cell.tenant_frac, SystemName(r.cell.system), r.attainment.both,
        r.goodput, r.high.both, r.high_mixed,
        static_cast<long long>(r.stats.requests_cancelled),
        static_cast<long long>(r.stats.requests_timed_out),
        static_cast<long long>(r.stats.decode_preemptions), r.trace_stats.prefix_hits,
        static_cast<long long>(r.trace_stats.cached_prefix_tokens),
        i + 1 < results.size() ? "," : "");
    json += line;
  }
  json += "  ],\n";

  PersistentGoodputCache goodput_cache(
      placement::GoodputCacheStore::ResolvePath(flags.goodput_cache), cluster.gpu);
  PlannerAccounting accounting;
  RunSearchSection(app, cluster, smoke, goodput_cache.cache(), &accounting, &json);
  goodput_cache.Save();

  const bool pass = gap_result != 0 && cold_result != 0 && priority_result != 0;
  json += "  \"chunked_closes_gap\": " + std::to_string(gap_result) + ",\n";
  json += "  \"disagg_wins_cold\": " + std::to_string(cold_result) + ",\n";
  json += "  \"priority_protects\": " + std::to_string(priority_result) + ",\n";
  {
    BenchJson accounting_json("fig_scenarios");
    goodput_cache.AddJsonFields(accounting_json);
    accounting.AddJsonFields(accounting_json);
    accounting_json.AddWallMs(timer);
    json += "  \"accounting\": " + accounting_json.Render();
    json += "}\n";
  }
  if (!flags.json_path.empty()) {
    std::ofstream out(flags.json_path);
    out << json;
  }
  if (!flags.trace_path.empty()) {
    recorder.WriteChromeJson(flags.trace_path);
  }
  return pass ? 0 : 1;
}

}  // namespace
}  // namespace distserve::bench

int main(int argc, char** argv) { return distserve::bench::Main(argc, argv); }
