// Figure 4: parallelism preference of a prefill instance (OPT-66B on 2 A100s).
//
// (a) Average TTFT vs arrival rate for 2-way intra-op vs 2-way inter-op, measured on the DES
//     engine and overlaid with the closed-form Eq. 2 / Eq. 3 curves. The paper's shape:
//     intra-op wins at low rates (execution time dominates), inter-op overtakes as queueing
//     dominates.
// (b) The same comparison as the intra-op speedup coefficient K degrades (scaling the
//     collective cost): lower K shrinks intra-op's advantage and moves the crossover left.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "engine/prefill_instance.h"
#include "queueing/md1.h"

namespace distserve {
namespace {

constexpr int kInputLen = 512;
constexpr int kRequests = 4000;

// Mean TTFT of a prefill-only engine with the given latency model (batching disabled to match
// the M/D/1 setting of §3.1).
double EngineMeanTtft(const model::LatencyModel& lm, double rate, uint64_t seed) {
  simcore::Simulator sim;
  engine::PrefillInstance::Options options;
  options.batch_policy.max_batch_size = 1;
  options.batch_policy.target_tokens = 1;
  engine::PrefillInstance instance(&sim, lm, /*kv_capacity_tokens=*/1 << 26, options, 0);
  double sum = 0.0;
  int done = 0;
  instance.set_on_complete([&](engine::RequestState* r) {
    sum += r->record.first_token - r->record.arrival;
    ++done;
    instance.ReleaseKv(r);
  });
  workload::FixedDataset dataset(kInputLen, 2);
  workload::TraceSpec spec;
  spec.rate = rate;
  spec.num_requests = kRequests;
  spec.seed = seed;
  const workload::Trace trace = workload::GenerateTrace(spec, dataset);
  std::vector<std::unique_ptr<engine::RequestState>> states;
  for (const workload::Request& req : trace) {
    states.push_back(std::make_unique<engine::RequestState>(req));
    engine::RequestState* state = states.back().get();
    sim.ScheduleAt(req.arrival_time, [&instance, state] { instance.Enqueue(state); });
  }
  sim.Run();
  return sum / done;
}

}  // namespace

int Main() {
  const model::ModelSpec spec = model::ModelSpec::Opt66B();
  const cluster::GpuSpec gpu = cluster::ClusterSpec::PaperTestbed().gpu;
  const model::LatencyModel single(spec, {1, 1}, gpu);
  const model::LatencyModel intra(spec, {2, 1}, gpu);
  const model::LatencyModel inter(spec, {1, 2}, gpu);
  const double service = single.PrefillFullTime(std::vector<int>{kInputLen});
  const double k = intra.IntraOpSpeedup(kInputLen);

  bench::PrintBanner("Figure 4a: avg TTFT, intra-op vs inter-op on 2 GPUs (OPT-66B, 512-token)");
  std::printf("# single-GPU prefill D = %.0f ms, measured intra-op speedup K = %.2f\n",
              1e3 * service, k);
  std::printf("%-10s %12s %12s %12s %12s\n", "rate", "intra(DES)", "inter(DES)", "intra(Eq3)",
              "inter(Eq2)");
  for (double util : {0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 1.3, 1.5, 1.7}) {
    const double rate = util / service;
    const double eq3 = queueing::IntraOp2AvgTtft(rate, service, k);
    const double eq2 = queueing::InterOp2AvgTtft(rate, service);
    const double des_intra =
        util < k * 0.97 ? EngineMeanTtft(intra, rate, 3) : -1.0;  // unstable beyond K/D
    const double des_inter = EngineMeanTtft(inter, rate, 3);
    auto fmt = [](double v) {
      if (v < 0) {
        std::printf(" %11s", "unstable");
      } else {
        std::printf(" %9.0fms", 1e3 * v);
      }
    };
    std::printf("%-10.2f", rate);
    fmt(des_intra);
    fmt(des_inter);
    fmt(eq3 < 1e6 ? eq3 : -1.0);
    fmt(eq2 < 1e6 ? eq2 : -1.0);
    std::printf("\n");
  }

  // With a slower interconnect the speedup K degrades and the crossover moves into the
  // stable range — the regime Figure 4a actually plots (the authors' testbed K < 2).
  model::LatencyModel degraded(spec, {2, 1}, gpu);
  degraded.ScaleCollectiveCost(16.0);
  const double k_low = degraded.IntraOpSpeedup(kInputLen);
  bench::PrintBanner("Figure 4a': same, with collective cost x16 (K = " +
                     std::to_string(k_low).substr(0, 4) + ")");
  std::printf("%-10s %12s %12s\n", "rate", "intra(DES)", "inter(DES)");
  for (double util : {0.3, 0.7, 1.1, 1.3, 1.5, 1.6}) {
    const double rate = util / service;
    const double des_intra =
        util < k_low * 0.97 ? EngineMeanTtft(degraded, rate, 5) : -1.0;
    const double des_inter = EngineMeanTtft(inter, rate, 5);
    if (des_intra < 0) {
      std::printf("%-10.2f %11s %9.0fms\n", rate, "unstable", 1e3 * des_inter);
    } else {
      std::printf("%-10.2f %9.0fms %9.0fms %s\n", rate, 1e3 * des_intra, 1e3 * des_inter,
                  des_intra > des_inter ? "<- inter-op wins" : "");
    }
  }

  bench::PrintBanner("Figure 4b: crossover rate vs intra-op speedup K (Eq. 2 vs Eq. 3)");
  std::printf("%-8s %16s %16s\n", "K", "crossover(rps)", "intra adv @0.5rho");
  for (double k_target : {1.2, 1.4, 1.6, 1.8, 1.95}) {
    const double crossover = queueing::InterIntraCrossoverRate(service, k_target);
    const double rho_half = 0.5 / service;
    const double advantage = queueing::InterOp2AvgTtft(rho_half, service) /
                             queueing::IntraOp2AvgTtft(rho_half, service, k_target);
    std::printf("%-8.2f %16.2f %15.2fx\n", k_target, crossover, advantage);
  }
  std::printf("# engine-level K knob: scaling collective cost 0x..8x gives K = ");
  for (double scale : {0.0, 1.0, 2.0, 4.0, 8.0}) {
    model::LatencyModel scaled(spec, {2, 1}, gpu);
    scaled.ScaleCollectiveCost(scale);
    std::printf("%.2f ", scaled.IntraOpSpeedup(kInputLen));
  }
  std::printf("\n");
  return 0;
}

}  // namespace distserve

int main() { return distserve::Main(); }
