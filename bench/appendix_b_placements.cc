// Appendix B: the placements DistServe chooses for each end-to-end experiment.
//
// The paper's table (model, dataset) -> (prefill TP/PP, decode TP/PP). Ours prints the
// Algorithm-2 choices for the paper testbed, plus the Algorithm-1 choices under an
// Infiniband network for comparison. The paper's choices for reference:
//   OPT-13B /ShareGPT  : prefill TP2 PP1, decode TP1 PP1
//   OPT-66B /ShareGPT  : prefill TP4 PP1, decode TP2 PP2
//   OPT-66B /LongBench : prefill TP4 PP1, decode TP2 PP2
//   OPT-66B /HumanEval : prefill TP4 PP1, decode TP2 PP2
//   OPT-175B/ShareGPT  : prefill TP3 PP3, decode TP4 PP3
#include <cstdio>

#include "bench/bench_common.h"

namespace distserve {

int Main() {
  const bench::Application apps[] = {
      bench::ChatbotOpt13B(),       bench::ChatbotOpt66B(),      bench::ChatbotOpt175B(),
      bench::CodeCompletionOpt66B(), bench::SummarizationOpt66B(),
  };
  bench::PrintBanner("Appendix B: placements chosen by the search algorithms");
  std::printf("%-20s %-12s | %-16s %-16s | %-16s %-16s\n", "application", "dataset",
              "alg2 prefill", "alg2 decode", "alg1 prefill", "alg1 decode");
  for (const bench::Application& app : apps) {
    const auto dataset = workload::MakeDatasetByName(app.dataset_name);
    placement::PlannerInputs low_inputs = bench::MakePlannerInputs(
        app, cluster::ClusterSpec::PaperTestbed(), dataset.get(), 1.0);
    const placement::PlacementPlan low = placement::LowNodeAffinityPlacement(low_inputs).plan;
    placement::PlannerInputs high_inputs = bench::MakePlannerInputs(
        app, cluster::ClusterSpec::InfinibandCluster(), dataset.get(), 1.0);
    const placement::PlacementPlan high =
        placement::HighNodeAffinityPlacement(high_inputs).plan;
    std::printf("%-20s %-12s | %-16s %-16s | %-16s %-16s\n", app.name.c_str(),
                app.dataset_name.c_str(), low.prefill_par.ToString().c_str(),
                low.decode_par.ToString().c_str(), high.prefill_par.ToString().c_str(),
                high.decode_par.ToString().c_str());
  }
  return 0;
}

}  // namespace distserve

int main() { return distserve::Main(); }
