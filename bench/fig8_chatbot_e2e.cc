// Figure 8: chatbot application end-to-end, OPT-13B / OPT-66B / OPT-175B on ShareGPT-like
// traffic. For each model: SLO attainment vs per-GPU rate (top row) and vs SLO scale (bottom
// row), DistServe (Algorithm-2 placement) vs vLLM (paper parallelism), equal GPU counts.
// Paper's shape: DistServe sustains 2.0x-3.41x the per-GPU rate and 1.4x-1.8x tighter SLOs.
//
// Flags: --smoke (OPT-13B only, reduced trace, for CI and perf tracking), --json=PATH
// (machine-readable artifact with the standard wall_ms field), --goodput-cache=PATH (env
// DISTSERVE_GOODPUT_CACHE fallback: persist the planner's goodput cache across processes;
// cache statistics go into the JSON artifact), --trace=PATH (export per-request spans for
// every engine run as Chrome trace-event JSON; see DESIGN.md §14), --no-analytic-tier (escape
// hatch: disable the planner's tier-1 analytic pre-filter, DESIGN.md §15, and force-simulate
// the full search). Stdout stays byte-identical across runs — warm-cached or cold, traced or
// not, tier on or off — so the CI determinism job can diff them; timing, cache-hit, and
// planner search-cost accounting go only into the JSON artifact.
//
// --cluster=SPEC (cluster/spec_parse.h grammar) substitutes a different homogeneous cluster
// for the paper testbed; multi-pool fleets are fig_hetero's job and are rejected here. When
// the flag is absent nothing is printed about the cluster, so default stdout is byte-identical
// to the pre-flag output.
//
// --shards=N (env DISTSERVE_SHARDS) fans the rate sweeps and the planner's candidate
// simulations across N-1 worker threads (DESIGN.md §17 sweep driver); stdout is byte-identical
// at any N, so the determinism job diffs --shards=4 against the default.
#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace distserve::bench;
  CommonFlags flags;
  if (!ParseCommonFlags(argc, argv,
                        kFlagSmoke | kFlagJson | kFlagGoodputCache | kFlagTrace |
                            kFlagNoAnalyticTier | kFlagCluster | kFlagShards,
                        &flags)) {
    return 2;
  }
  distserve::cluster::ClusterSpec cluster = distserve::cluster::ClusterSpec::PaperTestbed();
  if (!ResolveSinglePoolCluster(flags, "fig8", &cluster)) {
    return 2;
  }
  if (!flags.trace_path.empty() && !distserve::trace::kCompiledIn) {
    std::fprintf(stderr,
                 "warning: built with -DDISTSERVE_TRACE=OFF; no spans will be exported\n");
  }
  distserve::trace::Recorder recorder;
  distserve::trace::Recorder* rec = flags.trace_path.empty() ? nullptr : &recorder;
  const std::unique_ptr<distserve::ThreadPool> pool = MakeSweepPool(flags.shards);

  PersistentGoodputCache persist(
      distserve::placement::GoodputCacheStore::ResolvePath(flags.goodput_cache), cluster.gpu);

  const WallTimer timer;
  PlannerAccounting accounting;
  distserve::placement::PlannerResult planned;
  if (flags.smoke) {
    RunEndToEndComparison(ChatbotOpt13B(), /*num_requests=*/400, /*seed=*/81, persist.cache(),
                          rec, flags.analytic_tier, &planned, cluster, pool.get());
    accounting.Add(planned);
  } else {
    RunEndToEndComparison(ChatbotOpt13B(), /*num_requests=*/2500, /*seed=*/81, persist.cache(),
                          rec, flags.analytic_tier, &planned, cluster, pool.get());
    accounting.Add(planned);
    RunEndToEndComparison(ChatbotOpt66B(), /*num_requests=*/1500, /*seed=*/82, persist.cache(),
                          rec, flags.analytic_tier, &planned, cluster, pool.get());
    accounting.Add(planned);
    RunEndToEndComparison(ChatbotOpt175B(), /*num_requests=*/1000, /*seed=*/83,
                          persist.cache(), rec, flags.analytic_tier, &planned, cluster,
                          pool.get());
    accounting.Add(planned);
  }
  persist.Save();
  if (!flags.trace_path.empty()) {
    recorder.WriteChromeJson(flags.trace_path);
  }
  if (!flags.json_path.empty()) {
    BenchJson json("fig8_chatbot_e2e");
    json.AddBool("smoke", flags.smoke);
    json.AddBool("analytic_tier", flags.analytic_tier);
    json.AddInt("shards", flags.shards);
    json.AddWallMs(timer);
    accounting.AddJsonFields(json);
    if (persist.enabled()) {
      persist.AddJsonFields(json);
    }
    if (!json.WriteTo(flags.json_path)) {
      std::fprintf(stderr, "failed to write %s\n", flags.json_path.c_str());
      return 1;
    }
  }
  return 0;
}
