// Figure 8: chatbot application end-to-end, OPT-13B / OPT-66B / OPT-175B on ShareGPT-like
// traffic. For each model: SLO attainment vs per-GPU rate (top row) and vs SLO scale (bottom
// row), DistServe (Algorithm-2 placement) vs vLLM (paper parallelism), equal GPU counts.
// Paper's shape: DistServe sustains 2.0x-3.41x the per-GPU rate and 1.4x-1.8x tighter SLOs.
//
// Flags: --smoke (OPT-13B only, reduced trace, for CI and perf tracking), --json=PATH
// (machine-readable artifact with the standard wall_ms field). Stdout stays byte-identical
// across runs; timing goes only into the JSON artifact.
#include <cstring>

#include "bench/bench_common.h"

int main(int argc, char** argv) {
  using namespace distserve::bench;
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json=PATH]\n", argv[0]);
      return 2;
    }
  }

  const WallTimer timer;
  if (smoke) {
    RunEndToEndComparison(ChatbotOpt13B(), /*num_requests=*/400, /*seed=*/81);
  } else {
    RunEndToEndComparison(ChatbotOpt13B(), /*num_requests=*/2500, /*seed=*/81);
    RunEndToEndComparison(ChatbotOpt66B(), /*num_requests=*/1500, /*seed=*/82);
    RunEndToEndComparison(ChatbotOpt175B(), /*num_requests=*/1000, /*seed=*/83);
  }
  if (!json_path.empty()) {
    BenchJson json("fig8_chatbot_e2e");
    json.AddBool("smoke", smoke);
    json.AddWallMs(timer);
    if (!json.WriteTo(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
