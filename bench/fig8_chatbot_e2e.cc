// Figure 8: chatbot application end-to-end, OPT-13B / OPT-66B / OPT-175B on ShareGPT-like
// traffic. For each model: SLO attainment vs per-GPU rate (top row) and vs SLO scale (bottom
// row), DistServe (Algorithm-2 placement) vs vLLM (paper parallelism), equal GPU counts.
// Paper's shape: DistServe sustains 2.0x-3.41x the per-GPU rate and 1.4x-1.8x tighter SLOs.
#include "bench/bench_common.h"

int main() {
  using namespace distserve::bench;
  RunEndToEndComparison(ChatbotOpt13B(), /*num_requests=*/2500, /*seed=*/81);
  RunEndToEndComparison(ChatbotOpt66B(), /*num_requests=*/1500, /*seed=*/82);
  RunEndToEndComparison(ChatbotOpt175B(), /*num_requests=*/1000, /*seed=*/83);
  return 0;
}
