// Figure 8: chatbot application end-to-end, OPT-13B / OPT-66B / OPT-175B on ShareGPT-like
// traffic. For each model: SLO attainment vs per-GPU rate (top row) and vs SLO scale (bottom
// row), DistServe (Algorithm-2 placement) vs vLLM (paper parallelism), equal GPU counts.
// Paper's shape: DistServe sustains 2.0x-3.41x the per-GPU rate and 1.4x-1.8x tighter SLOs.
//
// Flags: --smoke (OPT-13B only, reduced trace, for CI and perf tracking), --json=PATH
// (machine-readable artifact with the standard wall_ms field), --goodput-cache=PATH (env
// DISTSERVE_GOODPUT_CACHE fallback: persist the planner's goodput cache across processes;
// cache statistics go into the JSON artifact), --trace=PATH (export per-request spans for
// every engine run as Chrome trace-event JSON; see DESIGN.md §14), --no-analytic-tier (escape
// hatch: disable the planner's tier-1 analytic pre-filter, DESIGN.md §15, and force-simulate
// the full search). Stdout stays byte-identical across runs — warm-cached or cold, traced or
// not, tier on or off — so the CI determinism job can diff them; timing, cache-hit, and
// planner search-cost accounting go only into the JSON artifact.
//
// --cluster=SPEC (cluster/spec_parse.h grammar) substitutes a different homogeneous cluster
// for the paper testbed; multi-pool fleets are fig_hetero's job and are rejected here. When
// the flag is absent nothing is printed about the cluster, so default stdout is byte-identical
// to the pre-flag output.
#include <cstring>

#include "bench/bench_common.h"
#include "cluster/spec_parse.h"

int main(int argc, char** argv) {
  using namespace distserve::bench;
  bool smoke = false;
  bool analytic_tier = true;
  std::string json_path;
  std::string cache_flag;
  std::string trace_path;
  std::string cluster_spec;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--no-analytic-tier") == 0) {
      analytic_tier = false;
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--goodput-cache=", 16) == 0) {
      cache_flag = argv[i] + 16;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--cluster=", 10) == 0) {
      cluster_spec = argv[i] + 10;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--smoke] [--json=PATH] [--goodput-cache=PATH] [--trace=PATH] "
                   "[--no-analytic-tier] [--cluster=SPEC]\n",
                   argv[0]);
      return 2;
    }
  }
  distserve::cluster::ClusterSpec cluster = distserve::cluster::ClusterSpec::PaperTestbed();
  if (!cluster_spec.empty()) {
    std::string error;
    const auto fleet = distserve::cluster::ParseClusterSpec(cluster_spec, &error);
    if (!fleet) {
      std::fprintf(stderr, "--cluster=%s: %s\n", cluster_spec.c_str(), error.c_str());
      return 2;
    }
    if (fleet->pools.size() != 1) {
      std::fprintf(stderr,
                   "--cluster=%s: fig8 plans homogeneous clusters; use fig_hetero for "
                   "multi-pool fleets\n",
                   cluster_spec.c_str());
      return 2;
    }
    cluster = fleet->PoolCluster(0);
    std::printf("# cluster: %s (%s)\n",
                distserve::cluster::FleetToString(*fleet).c_str(),
                cluster.gpu.name.c_str());
  }
  if (!trace_path.empty() && !distserve::trace::kCompiledIn) {
    std::fprintf(stderr,
                 "warning: built with -DDISTSERVE_TRACE=OFF; no spans will be exported\n");
  }
  distserve::trace::Recorder recorder;
  distserve::trace::Recorder* rec = trace_path.empty() ? nullptr : &recorder;

  PersistentGoodputCache persist(
      distserve::placement::GoodputCacheStore::ResolvePath(cache_flag), cluster.gpu);

  const WallTimer timer;
  PlannerAccounting accounting;
  distserve::placement::PlannerResult planned;
  if (smoke) {
    RunEndToEndComparison(ChatbotOpt13B(), /*num_requests=*/400, /*seed=*/81, persist.cache(),
                          rec, analytic_tier, &planned, cluster);
    accounting.Add(planned);
  } else {
    RunEndToEndComparison(ChatbotOpt13B(), /*num_requests=*/2500, /*seed=*/81, persist.cache(),
                          rec, analytic_tier, &planned, cluster);
    accounting.Add(planned);
    RunEndToEndComparison(ChatbotOpt66B(), /*num_requests=*/1500, /*seed=*/82, persist.cache(),
                          rec, analytic_tier, &planned, cluster);
    accounting.Add(planned);
    RunEndToEndComparison(ChatbotOpt175B(), /*num_requests=*/1000, /*seed=*/83,
                          persist.cache(), rec, analytic_tier, &planned, cluster);
    accounting.Add(planned);
  }
  persist.Save();
  if (!trace_path.empty()) {
    recorder.WriteChromeJson(trace_path);
  }
  if (!json_path.empty()) {
    BenchJson json("fig8_chatbot_e2e");
    json.AddBool("smoke", smoke);
    json.AddBool("analytic_tier", analytic_tier);
    json.AddWallMs(timer);
    accounting.AddJsonFields(json);
    if (persist.enabled()) {
      persist.AddJsonFields(json);
    }
    if (!json.WriteTo(json_path)) {
      std::fprintf(stderr, "failed to write %s\n", json_path.c_str());
      return 1;
    }
  }
  return 0;
}
