// Figure 7: input and output length distributions of the three workload datasets.
//
// Prints summary statistics and ASCII histograms for the ShareGPT-like, HumanEval-like, and
// LongBench-like samplers. The paper's shape: HumanEval short/short, ShareGPT moderate with a
// tail, LongBench inputs an order of magnitude longer with short outputs.
#include <cstdio>
#include <memory>

#include "common/stats.h"
#include "workload/dataset.h"

namespace distserve {
namespace {

void Describe(const workload::Dataset& dataset, double input_hi, double output_hi) {
  Rng rng(2024);
  PercentileTracker inputs;
  PercentileTracker outputs;
  Histogram in_hist(0.0, input_hi, 16);
  Histogram out_hist(0.0, output_hi, 16);
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    const workload::LengthSample s = dataset.Sample(rng);
    inputs.Add(s.input_len);
    outputs.Add(s.output_len);
    in_hist.Add(s.input_len);
    out_hist.Add(s.output_len);
  }
  std::printf("\n--- %s (%d samples) ---\n", dataset.name().c_str(), kSamples);
  std::printf("input : mean=%-7.0f p50=%-7.0f p90=%-7.0f p99=%-7.0f max=%-7.0f\n",
              inputs.Mean(), inputs.Percentile(50), inputs.Percentile(90),
              inputs.Percentile(99), inputs.Max());
  std::printf("output: mean=%-7.0f p50=%-7.0f p90=%-7.0f p99=%-7.0f max=%-7.0f\n",
              outputs.Mean(), outputs.Percentile(50), outputs.Percentile(90),
              outputs.Percentile(99), outputs.Max());
  std::printf("input histogram:\n%s", in_hist.Render(60).c_str());
  std::printf("output histogram:\n%s", out_hist.Render(60).c_str());
}

}  // namespace

int Main() {
  std::printf("=== Figure 7: dataset length distributions ===\n");
  Describe(*workload::MakeShareGptLike(), 1600, 800);
  Describe(*workload::MakeHumanEvalLike(), 512, 400);
  Describe(*workload::MakeLongBenchLike(), 12000, 500);
  return 0;
}

}  // namespace distserve

int main() { return distserve::Main(); }
