// fig_hetero (extension beyond the paper's exhibits): SLO-aware per-phase allocation over
// heterogeneous GPU pools (DESIGN.md §16).
//
// Plans one application over a multi-pool fleet under all three planner objectives
// (MaxGoodput / MinGpus / MinCost) and reports, per objective, which pool each phase landed
// on, the plan, its GPU count, $/hr, sustained goodput, and cost per million served requests.
// Then compares the MinCost plan against planning each pool alone (the "uniform fleet"
// baselines) — the heterogeneous search's candidate set contains every single-pool plan, so
// mixed must never cost more, and routing prefill to compute-rich SKUs / decode to
// bandwidth-rich SKUs is what makes it strictly cheaper. Finally exercises degraded replanning:
// the chosen plan's prefill pool is failed wholesale through HeteroGpuAllocator::MarkFailed,
// and the replan on fleet.Degraded(alloc.FailedPerPool()) must fall back to surviving pools.
//
// Flags: --smoke (reduced search fidelity for CI), --json=PATH (machine-readable artifact:
// goodput-per-dollar, cost-per-million-requests, planner accounting, cache stats),
// --goodput-cache=PATH (env DISTSERVE_GOODPUT_CACHE fallback), --cluster=SPEC
// (cluster/spec_parse.h grammar; default the mixed demo fleet), --no-analytic-tier (escape
// hatch, DESIGN.md §15), --shards=N (env DISTSERVE_SHARDS: run the planner's candidate
// simulations on N-1 worker threads; DESIGN.md §17). Stdout is byte-identical across runs —
// cache cold or warm, tier on or off, any shard count (the CI determinism job diffs exactly
// this); search-cost accounting and cache statistics go only into the JSON artifact.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cluster/spec_parse.h"
#include "placement/hetero.h"

namespace distserve::bench {
namespace {

const char* ObjectiveName(placement::PlannerObjective objective) {
  switch (objective) {
    case placement::PlannerObjective::kMaxGoodput:
      return "max-goodput";
    case placement::PlannerObjective::kMinGpus:
      return "min-gpus";
    case placement::PlannerObjective::kMinCost:
      return "min-cost";
  }
  return "unknown";
}

// "h100 tp2 pp1 x3": pool, parallelism, replica count of one phase.
std::string PhaseDesc(const std::string& pool, const model::ParallelismConfig& par,
                      int replicas) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s tp%d pp%d x%d", pool.c_str(), par.tp, par.pp, replicas);
  return buf;
}

double CostPerMillion(const placement::PoolAssignment& a, double traffic_rate) {
  const double served = std::min(traffic_rate, a.system_goodput);
  return served > 0.0 ? a.cost_per_hour / (served * 3600.0) * 1e6 : -1.0;
}

void PrintAssignmentRow(const char* label, const placement::PoolAssignment& a,
                        double traffic_rate) {
  const double per_million = CostPerMillion(a, traffic_rate);
  std::printf("%-12s %-18s %-18s %5d %8.2f %9.3f %10.2f %s\n", label,
              PhaseDesc(a.prefill_pool_name, a.plan.prefill_par, a.plan.num_prefill).c_str(),
              PhaseDesc(a.decode_pool_name, a.plan.decode_par, a.plan.num_decode).c_str(),
              a.total_gpus(), a.cost_per_hour, a.system_goodput, per_million,
              a.feasible ? "yes" : "no");
}

// Nested JSON for one objective's result: the chosen assignment's economics plus the search's
// cost accounting (accounting varies tier-on/off and cache-cold/warm; it must never reach
// stdout).
std::string ResultJson(const placement::HeteroPlannerResult& r, double traffic_rate) {
  const placement::PoolAssignment& a = r.chosen;
  const double per_dollar = a.cost_per_hour > 0.0 ? a.system_goodput / a.cost_per_hour : 0.0;
  char buf[1024];
  std::snprintf(
      buf, sizeof buf,
      "{\"prefill_pool\": \"%s\", \"decode_pool\": \"%s\", \"colocated\": %s, "
      "\"plan\": \"%s\", \"total_gpus\": %d, \"cost_per_hour\": %.6g, "
      "\"system_goodput\": %.6g, \"goodput_per_dollar\": %.6g, "
      "\"cost_per_million_requests\": %.6g, \"feasible\": %s, "
      "\"pairs_considered\": %d, \"pairs_cost_pruned\": %d, \"configs_evaluated\": %d, "
      "\"simulations_run\": %d, \"simulations_skipped\": %d, \"cache_hits\": %d, "
      "\"pruned_roofline\": %d, \"pruned_tier\": %d, \"probes\": %lld, "
      "\"trace_cache_hits\": %lld}",
      a.prefill_pool_name.c_str(), a.decode_pool_name.c_str(), a.colocated ? "true" : "false",
      a.plan.ToString().c_str(), a.total_gpus(), a.cost_per_hour, a.system_goodput, per_dollar,
      CostPerMillion(a, traffic_rate), a.feasible ? "true" : "false", r.pairs_considered,
      r.pairs_cost_pruned, r.configs_evaluated, r.simulations_run, r.simulations_skipped,
      r.cache_hits, r.configs_pruned_roofline, r.configs_pruned_tier,
      static_cast<long long>(r.probes), static_cast<long long>(r.trace_cache_hits));
  return buf;
}

int Main(int argc, char** argv) {
  const WallTimer timer;
  CommonFlags flags;
  flags.cluster_spec = "mixed";  // default demo fleet; --cluster=SPEC overrides
  if (!ParseCommonFlags(argc, argv,
                        kFlagSmoke | kFlagJson | kFlagGoodputCache | kFlagNoAnalyticTier |
                            kFlagCluster | kFlagShards,
                        &flags)) {
    return 2;
  }
  const bool smoke = flags.smoke;
  const bool analytic_tier = flags.analytic_tier;
  std::string error;
  const auto fleet = cluster::ParseClusterSpec(flags.cluster_spec, &error);
  if (!fleet) {
    std::fprintf(stderr, "--cluster=%s: %s\n", flags.cluster_spec.c_str(), error.c_str());
    return 2;
  }
  const std::unique_ptr<ThreadPool> sweep_pool = MakeSweepPool(flags.shards);

  const Application app = ChatbotOpt13B();
  const auto dataset = workload::MakeDatasetByName(app.dataset_name);
  // High enough that capacity binds: single cheap pairs cannot serve it, so the objectives
  // separate and cross-pool plans (prefill on the compute-per-dollar SKU, decode on the
  // bandwidth-per-dollar SKU) get room to beat every uniform fleet.
  const double traffic_rate = 40.0;

  placement::PlannerInputs inputs =
      MakePlannerInputs(app, fleet->PoolCluster(0), dataset.get(), traffic_rate);
  inputs.use_analytic_tier = analytic_tier;
  inputs.pool = sweep_pool.get();
  if (smoke) {
    inputs.search.num_requests = 150;
    inputs.search.min_trace_duration = 20.0;
    inputs.search.max_requests = 1500;
    inputs.search.bisection_iters = 5;
  }
  PersistentGoodputCache persist(
      placement::GoodputCacheStore::ResolvePath(flags.goodput_cache), *fleet);
  inputs.goodput_cache = persist.cache();

  std::printf("fig_hetero: per-phase pool allocation (%s, %.1f req/s, TTFT<=%.3gs "
              "TPOT<=%.3gs)\n",
              app.name.c_str(), traffic_rate, app.slo.ttft, app.slo.tpot);
  std::printf("fleet: %s (%d GPUs, $%.2f/hr whole fleet)\n",
              cluster::FleetToString(*fleet).c_str(), fleet->total_gpus(),
              fleet->hourly_cost());

  std::printf("\n%-12s %-18s %-18s %5s %8s %9s %10s %s\n", "objective", "prefill", "decode",
              "gpus", "$/hr", "goodput", "$/M-req", "feasible");
  const std::vector<placement::PlannerObjective> objectives = {
      placement::PlannerObjective::kMaxGoodput, placement::PlannerObjective::kMinGpus,
      placement::PlannerObjective::kMinCost};
  std::vector<placement::HeteroPlannerResult> results;
  for (placement::PlannerObjective objective : objectives) {
    inputs.objective = objective;
    results.push_back(placement::HeterogeneousPlacement(inputs, *fleet));
    PrintAssignmentRow(ObjectiveName(objective), results.back().chosen, traffic_rate);
  }
  const placement::HeteroPlannerResult& min_cost = results.back();

  // MinCost vs planning each pool alone. The mixed search's candidates include every
  // single-pool plan, so mixed <= best uniform whenever any uniform is feasible.
  std::printf("\n-- min-cost vs uniform single-pool fleets --\n");
  inputs.objective = placement::PlannerObjective::kMinCost;
  double best_uniform_cost = -1.0;
  std::string uniform_json;
  for (size_t i = 0; i < fleet->pools.size(); ++i) {
    cluster::HeteroClusterSpec uniform = *fleet;
    uniform.pools = {fleet->pools[i]};
    const placement::HeteroPlannerResult r = placement::HeterogeneousPlacement(inputs, uniform);
    std::printf("uniform %-6s %5d gpus  $%8.2f/hr  %s\n", fleet->pools[i].name.c_str(),
                r.chosen.total_gpus(), r.chosen.cost_per_hour,
                r.chosen.feasible ? "feasible" : "infeasible");
    if (r.chosen.feasible &&
        (best_uniform_cost < 0.0 || r.chosen.cost_per_hour < best_uniform_cost)) {
      best_uniform_cost = r.chosen.cost_per_hour;
    }
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "%s{\"pool\": \"%s\", \"total_gpus\": %d, \"cost_per_hour\": %.6g, "
                  "\"feasible\": %s}",
                  uniform_json.empty() ? "" : ", ", fleet->pools[i].name.c_str(),
                  r.chosen.total_gpus(), r.chosen.cost_per_hour,
                  r.chosen.feasible ? "true" : "false");
    uniform_json += buf;
  }
  const bool cheaper = min_cost.chosen.feasible && best_uniform_cost >= 0.0 &&
                       min_cost.chosen.cost_per_hour <= best_uniform_cost;
  std::printf("mixed min-cost $%8.2f/hr vs best uniform $%8.2f/hr\n",
              min_cost.chosen.cost_per_hour, best_uniform_cost);
  std::printf("MIXED<=UNIFORM: %s\n", cheaper ? "PASS" : "FAIL");

  // Degraded replan: fail the min-cost plan's prefill pool wholesale (one node when it is the
  // only pool) via the allocator, then replan on the surviving fleet.
  const int failed_pool = min_cost.chosen.prefill_pool;
  const std::string failed_name = min_cost.chosen.prefill_pool_name;
  cluster::HeteroGpuAllocator alloc(*fleet);
  {
    const cluster::GpuPool& pool = fleet->pools[static_cast<size_t>(failed_pool)];
    const int fail_nodes = fleet->pools.size() > 1 ? pool.num_nodes : 1;
    for (int node = 0; node < fail_nodes; ++node) {
      for (int index = 0; index < pool.gpus_per_node; ++index) {
        alloc.MarkFailed({failed_pool, {node, index}});
      }
    }
  }
  const cluster::HeteroClusterSpec degraded = fleet->Degraded(alloc.FailedPerPool());
  std::printf("\n-- degraded replan: %d GPUs of pool %s failed --\n",
              alloc.failed_gpus(failed_pool), failed_name.c_str());
  std::printf("surviving fleet: %s\n", cluster::FleetToString(degraded).c_str());
  const placement::HeteroPlannerResult replanned =
      placement::HeterogeneousPlacement(inputs, degraded);
  PrintAssignmentRow("min-cost", replanned.chosen, traffic_rate);
  const bool avoided = fleet->pools.size() <= 1 ||
                       (replanned.chosen.prefill_pool_name != failed_name &&
                        replanned.chosen.decode_pool_name != failed_name);
  const bool replan_ok = replanned.chosen.system_goodput > 0.0 && avoided;
  std::printf("DEGRADED-REPLAN: %s (goodput > 0: %s, avoids failed pool: %s)\n",
              replan_ok ? "PASS" : "FAIL",
              replanned.chosen.system_goodput > 0.0 ? "yes" : "no", avoided ? "yes" : "no");

  if (!flags.json_path.empty()) {
    BenchJson json("fig_hetero");
    json.AddBool("smoke", smoke);
    json.AddBool("analytic_tier", analytic_tier);
    json.AddInt("shards", flags.shards);
    json.AddString("fleet", cluster::FleetToString(*fleet));
    json.AddDouble("traffic_rate", traffic_rate);
    json.AddDouble("fleet_cost_per_hour", fleet->hourly_cost());
    json.AddWallMs(timer);
    for (size_t i = 0; i < objectives.size(); ++i) {
      json.AddRaw(ObjectiveName(objectives[i]), ResultJson(results[i], traffic_rate));
    }
    json.AddRaw("uniform", "[" + uniform_json + "]");
    json.AddDouble("best_uniform_cost_per_hour", best_uniform_cost);
    json.AddBool("min_cost_cheaper_than_uniform", cheaper);
    json.AddRaw("degraded_replan", ResultJson(replanned, traffic_rate));
    json.AddBool("degraded_replan_pass", replan_ok);
    if (persist.enabled()) {
      persist.AddJsonFields(json);
    }
    if (!json.WriteTo(flags.json_path)) {
      std::fprintf(stderr, "failed to write %s\n", flags.json_path.c_str());
      return 1;
    }
  }
  return (cheaper && replan_ok) ? 0 : 1;
}

}  // namespace
}  // namespace distserve::bench

int main(int argc, char** argv) { return distserve::bench::Main(argc, argv); }
