// Microbenchmarks of the autoscaling layer's hot paths (DESIGN.md §18).
//
// The autoscaler itself is control-plane code — one decision per control window — but two of
// its ingredients sit on real hot paths: RateSchedule::rate(t) is evaluated once per
// candidate arrival during scheduled-trace generation (hundreds of thousands of calls per
// simulated day), and GenerateScheduledTrace runs before every fig_autoscale day. The
// decision loop row exists to keep the controller O(1) per window: any accidental
// per-window allocation or scan would show up here long before it mattered in a bench.
// The perf gate tracks all three against BENCH_simcore.json.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/rng.h"
#include "serving/autoscaler.h"
#include "workload/arrival.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace distserve {
namespace {

workload::RateSchedule MakeDaySchedule() {
  workload::RateSchedule schedule = workload::RateSchedule::Diurnal(2.0, 10.0, 86400.0);
  schedule.AddSpike({47520.0, 3600.0, 1.6});
  schedule.AddSpike({20000.0, 1800.0, 1.3});
  return schedule;
}

// rate(t) across a day of sample points: the thinning inner loop's cost.
void BM_ScheduleRate(benchmark::State& state) {
  const workload::RateSchedule schedule = MakeDaySchedule();
  const int kSamples = 8192;
  for (auto _ : state) {
    double sum = 0.0;
    for (int i = 0; i < kSamples; ++i) {
      sum += schedule.rate(static_cast<double>(i) * (86400.0 / kSamples));
    }
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * kSamples);
}
BENCHMARK(BM_ScheduleRate);

// A compressed scheduled day end to end: thinning + dataset sampling + trace assembly.
void BM_ScheduledTraceGen(benchmark::State& state) {
  const workload::RateSchedule schedule = MakeDaySchedule();
  const auto dataset = workload::MakeDatasetByName("sharegpt");
  workload::ScheduledTraceSpec spec;
  spec.schedule = &schedule;
  spec.horizon = 3600.0;
  spec.seed = 77;
  int64_t requests = 0;
  for (auto _ : state) {
    const workload::Trace trace = workload::GenerateScheduledTrace(spec, *dataset);
    requests += static_cast<int64_t>(trace.size());
    benchmark::DoNotOptimize(trace.data());
  }
  state.SetItemsProcessed(requests);
}
BENCHMARK(BM_ScheduledTraceGen);

// Controller decisions over a synthetic day of window samples (load swings through the
// band edges so every branch — scale-up, confirm, cooldown, hold — is exercised).
void BM_AutoscalerDecide(benchmark::State& state) {
  const int kWindows = 4096;
  std::vector<serving::WindowSample> samples;
  samples.reserve(kWindows);
  for (int w = 0; w < kWindows; ++w) {
    serving::WindowSample s;
    s.start = w * 60.0;
    s.end = s.start + 60.0;
    const double phase = static_cast<double>(w % 96) / 96.0;
    s.observed_rate = 2.0 + 8.0 * phase;
    s.requests = static_cast<int>(s.observed_rate * 60.0);
    s.attainment = phase > 0.8 ? 0.85 : 0.99;
    s.goodput = s.observed_rate * s.attainment;
    s.mean_latency = 1.5;
    samples.push_back(s);
  }
  for (auto _ : state) {
    serving::Autoscaler::Options options;
    options.cooldown = 120.0;
    serving::Autoscaler controller(options, 8.0, 0.0);
    int actions = 0;
    for (const serving::WindowSample& s : samples) {
      const serving::AutoscaleDecision d = controller.Observe(s);
      if (d.action != serving::AutoscaleAction::kHold) {
        ++actions;
        controller.InstallPlan(d.plan_rate * 1.05, s.end);
      }
    }
    benchmark::DoNotOptimize(actions);
  }
  state.SetItemsProcessed(state.iterations() * kWindows);
}
BENCHMARK(BM_AutoscalerDecide);

}  // namespace
}  // namespace distserve

BENCHMARK_MAIN();
