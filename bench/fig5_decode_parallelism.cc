// Figure 5: decode-phase latency and throughput under different parallelism degrees.
//
// OPT-13B, batch size 128, input length 256, in the near-compute-bound large-batch regime the
// paper studies. The shape: intra-op parallelism reduces per-step latency with diminishing
// returns (communication + partitioning overheads), while inter-op parallelism scales
// throughput almost linearly at ~flat latency (micro-batch pipelining).
#include <cstdio>

#include "bench/bench_common.h"

namespace distserve {

int Main() {
  const model::ModelSpec spec = model::ModelSpec::Opt13B();
  const cluster::GpuSpec gpu = cluster::ClusterSpec::PaperTestbed().gpu;
  constexpr int kBatch = 128;
  constexpr int kContext = 256;
  const int64_t ctx_total = static_cast<int64_t>(kBatch) * kContext;

  bench::PrintBanner("Figure 5: decode latency & throughput vs parallelism (13B, B=128, in=256)");
  std::printf("%-12s %6s %14s %16s %12s\n", "config", "gpus", "step-latency", "throughput",
              "latency-gain");
  const double base_latency =
      model::LatencyModel(spec, {1, 1}, gpu).DecodeStepFullTime(kBatch, ctx_total);

  for (int tp : {1, 2, 4, 8}) {
    const model::LatencyModel lm(spec, {tp, 1}, gpu);
    const double step = lm.DecodeStepFullTime(kBatch, ctx_total);
    std::printf("%-12s %6d %12.2fms %12.0f tok/s %11.2fx\n",
                ("intra-op=" + std::to_string(tp)).c_str(), tp, 1e3 * step, kBatch / step,
                base_latency / step);
  }
  for (int pp : {2, 4, 8}) {
    // Inter-op: pp micro-batch lanes, each holding B=128 (memory scales with GPUs), stepping
    // at whole-model latency; aggregate throughput multiplies by pp.
    const model::LatencyModel lm(spec, {1, pp}, gpu);
    const double lane_step = lm.DecodeStepFullTime(kBatch, ctx_total);
    std::printf("%-12s %6d %12.2fms %12.0f tok/s %11.2fx\n",
                ("inter-op=" + std::to_string(pp)).c_str(), pp, 1e3 * lane_step,
                pp * kBatch / lane_step, base_latency / lane_step);
  }
  std::printf(
      "\n# intra-op: latency shrinks sublinearly (diminishing returns); inter-op: ~flat\n"
      "# latency, near-linear aggregate throughput — matching the paper's conclusions.\n");
  return 0;
}

}  // namespace distserve

int main() { return distserve::Main(); }
