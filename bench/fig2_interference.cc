// Figure 2: prefill-decoding interference at batch level.
//
// Execution time of one engine step for OPT-13B as the decode batch size grows, comparing a
// decode-only batch against the same batch plus a single prefill request (input 128 in Fig 2a,
// 512 and 1024 for the Fig 2b slowdown trend). The paper's shape: adding one prefill multiplies
// the step time severalfold, and the slowdown grows with prefill length.
#include <cstdio>

#include "bench/bench_common.h"

namespace distserve {

int Main() {
  const model::ModelSpec spec = model::ModelSpec::Opt13B();
  const model::LatencyModel lm(spec, {1, 1}, cluster::ClusterSpec::PaperTestbed().gpu);
  constexpr int kAvgContext = 256;

  bench::PrintBanner("Figure 2: batch execution time, decode-only vs +1 prefill (OPT-13B)");
  std::printf("%-10s %12s %14s %14s %14s\n", "batch", "decode-only", "+prefill-128",
              "+prefill-512", "+prefill-1024");
  for (int batch : {1, 2, 4, 8, 16, 32, 64, 128}) {
    const int64_t ctx = static_cast<int64_t>(batch) * kAvgContext;
    const double decode_only = lm.FullTime(model::BatchWorkload::Decode(batch, ctx));
    auto mixed = [&](int prefill_len) {
      model::BatchWorkload workload = model::BatchWorkload::Decode(batch, ctx);
      workload += model::BatchWorkload::PrefillSingle(prefill_len);
      return lm.FullTime(workload);
    };
    std::printf("%-10d %10.2fms %12.2fms %12.2fms %12.2fms\n", batch, 1e3 * decode_only,
                1e3 * mixed(128), 1e3 * mixed(512), 1e3 * mixed(1024));
  }

  std::printf("\n# Figure 2b analogue: slowdown of a 32-request decode batch vs prefill length\n");
  std::printf("%-14s %12s\n", "prefill-len", "slowdown");
  const double base = lm.FullTime(model::BatchWorkload::Decode(32, 32 * kAvgContext));
  for (int len : {64, 128, 256, 512, 768, 1024, 1536, 2048}) {
    model::BatchWorkload workload = model::BatchWorkload::Decode(32, 32 * kAvgContext);
    workload += model::BatchWorkload::PrefillSingle(len);
    std::printf("%-14d %11.2fx\n", len, lm.FullTime(workload) / base);
  }
  return 0;
}

}  // namespace distserve

int main() { return distserve::Main(); }
