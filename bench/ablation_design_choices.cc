// Ablations of DistServe's own design choices (DESIGN.md §5) — beyond the paper's Figure 11.
//
// A) L_m-aware prefill batching (§4.3): sweep the batch token target on a bursty short-prompt
//    workload. Too small forfeits batching (queueing inflates TTFT at high rate); too large
//    delays whole batches behind the compute roofline. The saturation-point target the paper
//    derives from profiling should sit near the knee.
// B) Pipeline-bubble scheduling (§3.3/§4.3): uniform vs mixed prompt lengths on a pp=4
//    prefill instance; reports accumulated bubble time — the waste the paper's
//    balanced-batch scheduling exists to avoid.
// C) Pull-based transfer backpressure (§4.3 "combat burstiness"): bursty traffic against a
//    decode instance with shrinking admission watermarks; prefill-side KV buffering must
//    absorb the burst without losing requests, trading TTFT for decode-memory safety.
#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "engine/prefill_instance.h"

namespace distserve {
namespace {

void AblationBatchTarget() {
  bench::PrintBanner("Ablation A: prefill batch token target (L_m policy)");
  const model::LatencyModel lm(model::ModelSpec::Opt13B(), {1, 1},
                               cluster::ClusterSpec::PaperTestbed().gpu);
  workload::FixedDataset dataset(96, 2);  // short prompts: batching is the whole game
  workload::TraceSpec spec;
  spec.rate = 28.0;
  spec.num_requests = 4000;
  spec.seed = 3;
  const workload::Trace trace = workload::GenerateTrace(spec, dataset);
  std::printf("%-14s %12s %12s %14s\n", "target-tokens", "TTFT p50", "TTFT p90",
              "batches");
  for (int64_t target : {96, 192, 384, 512, 1024, 2048, 8192}) {
    simcore::Simulator sim;
    engine::PrefillInstance::Options options;
    options.batch_policy.target_tokens = target;
    engine::PrefillInstance instance(&sim, lm, 1 << 26, options, 0);
    PercentileTracker ttft;
    instance.set_on_complete([&](engine::RequestState* r) {
      ttft.Add(r->record.first_token - r->record.arrival);
      instance.ReleaseKv(r);
    });
    std::vector<std::unique_ptr<engine::RequestState>> states;
    for (const workload::Request& req : trace) {
      states.push_back(std::make_unique<engine::RequestState>(req));
      engine::RequestState* state = states.back().get();
      sim.ScheduleAt(req.arrival_time, [&instance, state] { instance.Enqueue(state); });
    }
    sim.Run();
    std::printf("%-14lld %10.1fms %10.1fms %14lld\n", static_cast<long long>(target),
                1e3 * ttft.Percentile(50), 1e3 * ttft.Percentile(90),
                static_cast<long long>(instance.batches_launched()));
  }
  std::printf("# model-derived saturation threshold: %lld tokens\n",
              static_cast<long long>(lm.ComputeSaturationTokens()));
}

void AblationPipelineBubbles() {
  bench::PrintBanner("Ablation B: pipeline bubbles from non-uniform prompt lengths (pp=4)");
  const model::LatencyModel lm(model::ModelSpec::Opt66B(), {1, 4},
                               cluster::ClusterSpec::PaperTestbed().gpu);
  auto run_case = [&](const char* name, bool mixed) {
    simcore::Simulator sim;
    engine::PrefillInstance::Options options;
    options.batch_policy.target_tokens = 1;  // one request per batch: worst-case variance
    options.batch_policy.max_batch_size = 1;
    engine::PrefillInstance instance(&sim, lm, 1 << 26, options, 0);
    instance.set_on_complete([&](engine::RequestState* r) { instance.ReleaseKv(r); });
    std::vector<std::unique_ptr<engine::RequestState>> states;
    Rng rng(9);
    double t = 0.0;
    for (int i = 0; i < 400; ++i) {
      workload::Request req;
      req.id = i;
      req.arrival_time = t;
      req.input_len = mixed ? (i % 2 == 0 ? 1536 : 64) : 800;
      req.output_len = 2;
      t += rng.Exponential(8.0);
      states.push_back(std::make_unique<engine::RequestState>(req));
      engine::RequestState* state = states.back().get();
      sim.ScheduleAt(req.arrival_time, [&instance, state] { instance.Enqueue(state); });
    }
    sim.Run();
    std::printf("%-24s busy=%7.2fs bubbles=%6.3fs (%.2f%% of busy)\n", name,
                instance.busy_seconds(), instance.bubble_seconds(),
                100.0 * instance.bubble_seconds() / instance.busy_seconds());
  };
  run_case("uniform 800-token", false);
  run_case("mixed 64/1536-token", true);
}

void AblationPullBackpressure() {
  bench::PrintBanner("Ablation C: pull-based transfer under bursty traffic (CV=4)");
  const bench::Application app = bench::ChatbotOpt13B();
  const cluster::ClusterSpec cluster = cluster::ClusterSpec::PaperTestbed();
  const auto dataset = workload::MakeDatasetByName(app.dataset_name);
  workload::TraceSpec spec;
  spec.rate = 5.0;
  spec.num_requests = 2500;
  spec.seed = 17;
  spec.burstiness_cv = 4.0;
  const workload::Trace trace = workload::GenerateTrace(spec, *dataset);
  std::printf("%-12s %12s %12s %14s %16s\n", "watermark", "TTFT p90", "TPOT p90",
              "attainment", "peak decode KV");
  for (double watermark : {1.0, 0.8, 0.6, 0.4}) {
    placement::PlacementPlan plan;
    plan.prefill_par = {1, 1};
    plan.decode_par = {1, 1};
    plan.num_prefill = 1;
    plan.num_decode = 1;
    plan.intra_node_transfers = true;
    serving::ServingConfig config;
    config.model = app.model;
    config.cluster = cluster;
    config.plan = plan;
    config.decode_options.admission_watermark = watermark;
    serving::ServingSystem system(std::move(config));
    const metrics::Collector results = system.Run(trace);
    const double peak_frac =
        static_cast<double>(system.decode_instances()[0]->kv().total_blocks());
    std::printf("%-12.1f %10.0fms %10.1fms %13.1f%% %13lld blk\n", watermark,
                1e3 * results.TtftPercentile(90), 1e3 * results.TpotPercentile(90),
                100.0 * results.ComputeAttainment(app.slo).both,
                static_cast<long long>(peak_frac));
  }
  std::printf("# every run completes all %zu requests: prefill-side KV buffering absorbs the\n"
              "# burst regardless of how conservatively the decode side admits (§4.3).\n",
              trace.size());
}

}  // namespace

int Main() {
  AblationBatchTarget();
  AblationPipelineBubbles();
  AblationPullBackpressure();
  return 0;
}

}  // namespace distserve

int main() { return distserve::Main(); }
