// Figure 11: ablation of the two key ideas — disaggregation and the placement search —
// on OPT-13B / ShareGPT-like traffic (the paper runs this in simulation, as do we).
//
// Four systems at equal GPU counts:
//   vLLM           — colocated, the paper's default parallelism (tp=1 for 13B);
//   vLLM++         — colocated, parallelism searched for best per-GPU goodput;
//   DistServe-Low  — disaggregated, Algorithm 2 (segment-colocation constraint);
//   DistServe-High — disaggregated, Algorithm 1 (no placement constraint, assumes fast
//                    cross-node network: evaluated on the Infiniband cluster spec).
// Paper's shape: DistServe-High >= DistServe-Low >> vLLM++ ~= vLLM.
#include <cstdio>

#include "bench/bench_common.h"
#include "placement/fast_sim.h"

namespace distserve {

int Main() {
  const bench::Application app = bench::ChatbotOpt13B();
  const auto dataset = workload::MakeDatasetByName(app.dataset_name);
  const cluster::ClusterSpec slow_cluster = cluster::ClusterSpec::PaperTestbed();
  const cluster::ClusterSpec fast_cluster = cluster::ClusterSpec::InfinibandCluster();

  placement::PlannerInputs inputs =
      bench::MakePlannerInputs(app, slow_cluster, dataset.get(), 1.0);

  bench::PrintBanner("Figure 11: ablation on OPT-13B + ShareGPT (per-GPU goodput, simulated)");

  // vLLM (paper default tp=1) and vLLM++ (searched).
  const double vllm_goodput =
      baselines::SimulateColocatedGoodput(inputs, {app.vllm_tp, 1}) / app.vllm_tp;
  const baselines::ColocatedSearchResult vllm_pp = baselines::FindBestColocatedConfig(inputs);

  // DistServe-Low: Algorithm 2 on the 25 Gbps testbed.
  const placement::PlannerResult low = placement::LowNodeAffinityPlacement(inputs);

  // DistServe-High: Algorithm 1 assuming high cross-node bandwidth. Algorithm 1 sizes each
  // phase independently, so for a per-GPU comparison we balance replica counts (smallest
  // n, m maximizing min(n*prefill, m*decode) per GPU).
  placement::PlannerInputs fast_inputs = inputs;
  fast_inputs.cluster = fast_cluster;
  placement::PlannerResult high = placement::HighNodeAffinityPlacement(fast_inputs);
  {
    double best_per_gpu = 0.0;
    int best_n = 1;
    int best_m = 1;
    for (int n = 1; n <= 6; ++n) {
      for (int m = 1; m <= 6; ++m) {
        const double goodput = std::min(n * high.plan.prefill_goodput,
                                        m * high.plan.decode_goodput);
        const int gpus = n * high.plan.prefill_par.num_gpus() +
                         m * high.plan.decode_par.num_gpus();
        if (goodput / gpus > best_per_gpu) {
          best_per_gpu = goodput / gpus;
          best_n = n;
          best_m = m;
        }
      }
    }
    high.plan.num_prefill = best_n;
    high.plan.num_decode = best_m;
  }

  std::printf("%-16s %-28s %16s\n", "system", "configuration", "goodput (rps/GPU)");
  std::printf("%-16s %-28s %16.3f\n", "vLLM",
              ("colocated tp=" + std::to_string(app.vllm_tp)).c_str(), vllm_goodput);
  std::printf("%-16s %-28s %16.3f\n", "vLLM++",
              ("colocated " + vllm_pp.par.ToString()).c_str(), vllm_pp.per_gpu);
  std::printf("%-16s %-28s %16.3f\n", "DistServe-Low",
              ("P{" + low.plan.prefill_par.ToString() + "} D{" +
               low.plan.decode_par.ToString() + "}")
                  .c_str(),
              low.plan.per_gpu_goodput());
  std::printf("%-16s %-28s %16.3f\n", "DistServe-High",
              ("P{" + high.plan.prefill_par.ToString() + "} D{" +
               high.plan.decode_par.ToString() + "}")
                  .c_str(),
              high.plan.per_gpu_goodput());
  std::printf(
      "\nratios: DistServe-Low/vLLM=%.2fx  DistServe-High/vLLM=%.2fx  vLLM++/vLLM=%.2fx\n",
      low.plan.per_gpu_goodput() / vllm_goodput, high.plan.per_gpu_goodput() / vllm_goodput,
      vllm_pp.per_gpu / vllm_goodput);

  // Attainment-vs-rate curves (the figure's x axis), fast-sim for all four systems.
  std::printf("\n-- simulated SLO attainment vs per-GPU rate --\n");
  bench::PrintSweepHeader("rate/gpu");
  const model::LatencyModel vllm_lm(app.model, {app.vllm_tp, 1}, slow_cluster.gpu);
  placement::ColocatedFastConfig coloc;
  coloc.kv_capacity_tokens =
      model::ShardedModelView(app.model, {app.vllm_tp, 1}).KvCapacityTokens(slow_cluster.gpu);
  auto plan_records = [&](const placement::PlacementPlan& plan,
                          const cluster::ClusterSpec& cluster, const workload::Trace& trace) {
    const model::LatencyModel prefill_lm(app.model, plan.prefill_par, cluster.gpu);
    const model::LatencyModel decode_lm(app.model, plan.decode_par, cluster.gpu);
    placement::DisaggregatedFastConfig fast;
    fast.num_prefill = plan.num_prefill;
    fast.num_decode = plan.num_decode;
    fast.decode_kv_capacity_tokens =
        model::ShardedModelView(app.model, plan.decode_par).KvCapacityTokens(cluster.gpu);
    return placement::SimulateDisaggregated(prefill_lm, decode_lm, trace, fast);
  };
  for (double per_gpu : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 5.0}) {
    workload::TraceSpec spec;
    spec.num_requests = 2500;
    spec.seed = 111;

    spec.rate = per_gpu * app.vllm_tp;
    const auto vllm_att = placement::FastAttainment(
        placement::SimulateColocated(vllm_lm, workload::GenerateTrace(spec, *dataset), coloc),
        app.slo);

    spec.rate = per_gpu * low.plan.total_gpus();
    const auto low_att = placement::FastAttainment(
        plan_records(low.plan, slow_cluster, workload::GenerateTrace(spec, *dataset)), app.slo);

    spec.rate = per_gpu * high.plan.total_gpus();
    const auto high_att = placement::FastAttainment(
        plan_records(high.plan, fast_cluster, workload::GenerateTrace(spec, *dataset)),
        app.slo);

    std::printf("%-10.2f %-14s %9.1f%% | DS-Low %5.1f%% | DS-High %5.1f%%\n", per_gpu, "vLLM",
                100.0 * vllm_att.both, 100.0 * low_att.both, 100.0 * high_att.both);
  }
  return 0;
}

}  // namespace distserve

int main() { return distserve::Main(); }
