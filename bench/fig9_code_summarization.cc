// Figure 9: code completion (HumanEval-like) and summarization (LongBench-like) on OPT-66B.
// Same format as Figure 8. Paper's shape: DistServe sustains 3.2x rate / 1.5x tighter SLO on
// code completion (TTFT-bound: real-time assistant) and 4.48x rate / 10.2x tighter SLO on
// summarization (long prompts make colocated decoding collapse on TPOT).
#include "bench/bench_common.h"

int main() {
  using namespace distserve::bench;
  RunEndToEndComparison(CodeCompletionOpt66B(), /*num_requests=*/1500, /*seed=*/91);
  RunEndToEndComparison(SummarizationOpt66B(), /*num_requests=*/800, /*seed=*/92);
  return 0;
}
