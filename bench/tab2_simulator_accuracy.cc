// Table 2: simulator accuracy.
//
// The paper validates its placement simulator by comparing SLO attainment against the real
// testbed for "vLLM" and "DistServe-Low" at rates 1.0-4.0 req/s, reporting <2% error. Our
// analogue: the fast placement simulator (loop-based, no transfer/DES) versus the engine-level
// DES runtime (the "real system" of this reproduction), on the same workload distribution.
#include <cmath>
#include <cstdio>

#include "bench/bench_common.h"
#include "placement/fast_sim.h"

namespace distserve {

int Main() {
  const bench::Application app = bench::ChatbotOpt13B();
  const cluster::ClusterSpec cluster = cluster::ClusterSpec::PaperTestbed();
  const auto dataset = workload::MakeDatasetByName(app.dataset_name);
  constexpr int kRequests = 3000;
  constexpr uint64_t kSeed = 21;

  // Fixed small deployments, mirroring the table's single-replica setting.
  const int vllm_tp = app.vllm_tp;
  placement::PlacementPlan ds_plan;
  ds_plan.prefill_par = {1, 1};
  ds_plan.decode_par = {1, 1};
  ds_plan.num_prefill = 1;
  ds_plan.num_decode = 1;
  ds_plan.intra_node_transfers = true;

  const model::LatencyModel vllm_lm(app.model, {vllm_tp, 1}, cluster.gpu);
  placement::ColocatedFastConfig coloc_fast;
  coloc_fast.cpu_overhead_per_step = baselines::kVllmStepCpuOverhead;
  coloc_fast.kv_capacity_tokens =
      model::ShardedModelView(app.model, {vllm_tp, 1}).KvCapacityTokens(cluster.gpu);

  const model::LatencyModel ds_lm(app.model, {1, 1}, cluster.gpu);
  placement::DisaggregatedFastConfig ds_fast;
  ds_fast.decode_kv_capacity_tokens =
      model::ShardedModelView(app.model, {1, 1}).KvCapacityTokens(cluster.gpu);

  bench::PrintBanner("Table 2: SLO attainment, engine-level DES (\"real\") vs fast simulator");
  std::printf("%-10s | %12s %12s %7s | %12s %12s %7s\n", "rate", "vLLM real", "vLLM sim",
              "err", "DS real", "DS sim", "err");
  double max_err = 0.0;
  for (double rate : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0}) {
    workload::TraceSpec spec;
    spec.rate = rate;
    spec.num_requests = kRequests;
    spec.seed = kSeed;
    const workload::Trace trace = workload::GenerateTrace(spec, *dataset);

    const bench::RunFn vllm_engine = bench::MakeVllmRunner(app.model, cluster, vllm_tp, 1);
    const double vllm_real = vllm_engine(trace).ComputeAttainment(app.slo).both;
    const double vllm_sim =
        placement::FastAttainment(placement::SimulateColocated(vllm_lm, trace, coloc_fast),
                                  app.slo)
            .both;

    const bench::RunFn ds_engine = bench::MakeDistServeRunner(app.model, cluster, ds_plan);
    const double ds_real = ds_engine(trace).ComputeAttainment(app.slo).both;
    ds_fast.prefill_target_tokens = 512;
    const double ds_sim =
        placement::FastAttainment(placement::SimulateDisaggregated(ds_lm, ds_lm, trace, ds_fast),
                                  app.slo)
            .both;

    const double vllm_err = std::fabs(vllm_real - vllm_sim);
    const double ds_err = std::fabs(ds_real - ds_sim);
    max_err = std::max({max_err, vllm_err, ds_err});
    std::printf("%-10.1f | %11.1f%% %11.1f%% %6.1f%% | %11.1f%% %11.1f%% %6.1f%%\n", rate,
                100.0 * vllm_real, 100.0 * vllm_sim, 100.0 * vllm_err, 100.0 * ds_real,
                100.0 * ds_sim, 100.0 * ds_err);
  }
  std::printf("\nmax |real - sim| attainment error: %.1f%% (paper reports < 2%%)\n",
              100.0 * max_err);
  return 0;
}

}  // namespace distserve

int main() { return distserve::Main(); }
