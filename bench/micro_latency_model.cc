// Microbenchmarks of the latency-model hot path.
//
// LatencyModel::FullTime is evaluated millions of times inside the placement search (every
// simulated engine step), so its cost bounds planner latency (Figure 12). These benchmarks
// keep it honest.
#include <benchmark/benchmark.h>

#include <vector>

#include "cluster/gpu_spec.h"
#include "model/calibration.h"
#include "model/latency_model.h"

namespace distserve::model {
namespace {

void BM_DecodeStepTime(benchmark::State& state) {
  const LatencyModel lm(ModelSpec::Opt13B(), {static_cast<int>(state.range(0)), 1},
                        cluster::GpuSpec::A100_80GB());
  int64_t batch = 1;
  for (auto _ : state) {
    batch = batch % 256 + 1;
    benchmark::DoNotOptimize(lm.DecodeStepFullTime(batch, batch * 400));
  }
}
BENCHMARK(BM_DecodeStepTime)->Arg(1)->Arg(4);

void BM_PrefillBatchTime(benchmark::State& state) {
  const LatencyModel lm(ModelSpec::Opt66B(), {4, 2}, cluster::GpuSpec::A100_80GB());
  const std::vector<int> lens = {128, 256, 512, 128};
  for (auto _ : state) {
    benchmark::DoNotOptimize(lm.PrefillFullTime(lens));
  }
}
BENCHMARK(BM_PrefillBatchTime);

void BM_MixedBatchTime(benchmark::State& state) {
  const LatencyModel lm(ModelSpec::Opt13B(), {1, 1}, cluster::GpuSpec::A100_80GB());
  BatchWorkload workload = BatchWorkload::PrefillSingle(512);
  workload += BatchWorkload::Decode(64, 64 * 300);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lm.FullTime(workload));
  }
}
BENCHMARK(BM_MixedBatchTime);

void BM_CoefficientFit(benchmark::State& state) {
  const LatencyModel truth(ModelSpec::Opt13B(), {1, 1}, cluster::GpuSpec::A100_80GB());
  Rng rng(1);
  const ProfileSweep sweep = GenerateProfile(truth, rng, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitCoefficients(ModelSpec::Opt13B(), {1, 1}, sweep,
                                             truth.coeffs()));
  }
}
BENCHMARK(BM_CoefficientFit);

}  // namespace
}  // namespace distserve::model

BENCHMARK_MAIN();
