// Microbenchmarks of the latency-model hot path.
//
// LatencyModel::FullTime is evaluated millions of times inside the placement search (every
// simulated engine step), so its cost bounds planner latency (Figure 12). These benchmarks
// keep it honest.
#include <benchmark/benchmark.h>

#include <vector>

#include "cluster/gpu_spec.h"
#include "model/calibration.h"
#include "model/latency_model.h"

namespace distserve::model {
namespace {

void BM_DecodeStepTime(benchmark::State& state) {
  const LatencyModel lm(ModelSpec::Opt13B(), {static_cast<int>(state.range(0)), 1},
                        cluster::GpuSpec::A100_80GB());
  int64_t batch = 1;
  for (auto _ : state) {
    batch = batch % 256 + 1;
    benchmark::DoNotOptimize(lm.DecodeStepFullTime(batch, batch * 400));
  }
}
BENCHMARK(BM_DecodeStepTime)->Arg(1)->Arg(4);

void BM_PrefillBatchTime(benchmark::State& state) {
  const LatencyModel lm(ModelSpec::Opt66B(), {4, 2}, cluster::GpuSpec::A100_80GB());
  const std::vector<int> lens = {128, 256, 512, 128};
  for (auto _ : state) {
    benchmark::DoNotOptimize(lm.PrefillFullTime(lens));
  }
}
BENCHMARK(BM_PrefillBatchTime);

void BM_MixedBatchTime(benchmark::State& state) {
  const LatencyModel lm(ModelSpec::Opt13B(), {1, 1}, cluster::GpuSpec::A100_80GB());
  BatchWorkload workload = BatchWorkload::PrefillSingle(512);
  workload += BatchWorkload::Decode(64, 64 * 300);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lm.FullTime(workload));
  }
}
BENCHMARK(BM_MixedBatchTime);

// Batched vs scalar lattice pricing (DESIGN.md §15). The tiered placement search prices whole
// batch lattices through EvaluateBatch; these two benchmarks pin its throughput edge over the
// per-point StageTime()/FullTime() loop it replaces (results are bit-identical — that is
// latency_model_test / tiered_search_test territory; here we only time it). The CI perf gate
// compares the pair.
BatchWorkloadLattice MakeBenchLattice(int n) {
  BatchWorkloadLattice lattice;
  lattice.Reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    const int batch = 1 + i % 128;
    BatchWorkload point = BatchWorkload::Decode(batch, static_cast<int64_t>(batch) * 300);
    if (i % 4 == 0) {
      point += BatchWorkload::PrefillSingle(64 + (i % 7) * 97);
    }
    lattice.PushBack(point);
  }
  return lattice;
}

void BM_LatticeScalar(benchmark::State& state) {
  const LatencyModel lm(ModelSpec::Opt13B(), {1, 1}, cluster::GpuSpec::A100_80GB());
  const BatchWorkloadLattice lattice = MakeBenchLattice(static_cast<int>(state.range(0)));
  std::vector<double> stage(lattice.size());
  std::vector<double> full(lattice.size());
  for (auto _ : state) {
    for (size_t i = 0; i < lattice.size(); ++i) {
      const BatchWorkload point = lattice.At(i);
      stage[i] = lm.StageTime(point);
      full[i] = lm.FullTime(point);
    }
    benchmark::DoNotOptimize(stage.data());
    benchmark::DoNotOptimize(full.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(lattice.size()));
}
BENCHMARK(BM_LatticeScalar)->Arg(64)->Arg(1024);

void BM_LatticeBatched(benchmark::State& state) {
  const LatencyModel lm(ModelSpec::Opt13B(), {1, 1}, cluster::GpuSpec::A100_80GB());
  const BatchWorkloadLattice lattice = MakeBenchLattice(static_cast<int>(state.range(0)));
  std::vector<double> stage(lattice.size());
  std::vector<double> full(lattice.size());
  for (auto _ : state) {
    lm.EvaluateBatch(lattice, stage, full);
    benchmark::DoNotOptimize(stage.data());
    benchmark::DoNotOptimize(full.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(lattice.size()));
}
BENCHMARK(BM_LatticeBatched)->Arg(64)->Arg(1024);

void BM_CoefficientFit(benchmark::State& state) {
  const LatencyModel truth(ModelSpec::Opt13B(), {1, 1}, cluster::GpuSpec::A100_80GB());
  Rng rng(1);
  const ProfileSweep sweep = GenerateProfile(truth, rng, 0.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitCoefficients(ModelSpec::Opt13B(), {1, 1}, sweep,
                                             truth.coeffs()));
  }
}
BENCHMARK(BM_CoefficientFit);

}  // namespace
}  // namespace distserve::model

BENCHMARK_MAIN();
