// Microbenchmark of the heterogeneous-fleet placement search (placement/hetero.h), the
// fig12 pattern applied to HeterogeneousPlacement: reduced search fidelity (the timing
// target is the algorithm, not the workload), the mixed demo fleet, one benchmark per
// objective, plus a tier-off ablation. Tracked in BENCH_simcore.json and gated by
// tools/check_perf_regression.py like the fig12 planners.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "placement/hetero.h"

namespace distserve {
namespace {

placement::PlannerInputs Inputs(placement::PlannerObjective objective) {
  static const auto dataset = workload::MakeShareGptLike();
  const bench::Application app = bench::ChatbotOpt13B();
  placement::PlannerInputs inputs = bench::MakePlannerInputs(
      app, cluster::ClusterSpec::PaperTestbed(), dataset.get(), /*traffic_rate=*/4.0);
  inputs.objective = objective;
  // Fidelity reduced for timing runs, matching fig12_algo_runtime.
  inputs.search.num_requests = 100;
  inputs.search.min_trace_duration = 10.0;
  inputs.search.max_requests = 600;
  inputs.search.bisection_iters = 4;
  return inputs;
}

void BM_HeteroMaxGoodput(benchmark::State& state) {
  const placement::PlannerInputs inputs = Inputs(placement::PlannerObjective::kMaxGoodput);
  const cluster::HeteroClusterSpec fleet = cluster::HeteroClusterSpec::MixedFleet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::HeterogeneousPlacement(inputs, fleet));
  }
  state.SetLabel("pools=3");
}

void BM_HeteroMinGpus(benchmark::State& state) {
  const placement::PlannerInputs inputs = Inputs(placement::PlannerObjective::kMinGpus);
  const cluster::HeteroClusterSpec fleet = cluster::HeteroClusterSpec::MixedFleet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::HeterogeneousPlacement(inputs, fleet));
  }
  state.SetLabel("pools=3");
}

void BM_HeteroMinCost(benchmark::State& state) {
  const placement::PlannerInputs inputs = Inputs(placement::PlannerObjective::kMinCost);
  const cluster::HeteroClusterSpec fleet = cluster::HeteroClusterSpec::MixedFleet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::HeterogeneousPlacement(inputs, fleet));
  }
  state.SetLabel("pools=3");
}

// Tier-off ablation: plans are bit-identical (hetero_placement_test pins this); the gap to
// BM_HeteroMinCost is the analytic tier's wall-clock win on the heterogeneous search.
void BM_HeteroMinCostTierOff(benchmark::State& state) {
  placement::PlannerInputs inputs = Inputs(placement::PlannerObjective::kMinCost);
  inputs.use_analytic_tier = false;
  const cluster::HeteroClusterSpec fleet = cluster::HeteroClusterSpec::MixedFleet();
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::HeterogeneousPlacement(inputs, fleet));
  }
  state.SetLabel("pools=3");
}

BENCHMARK(BM_HeteroMaxGoodput)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HeteroMinGpus)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HeteroMinCost)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HeteroMinCostTierOff)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace distserve

BENCHMARK_MAIN();
