// Microbenchmarks of the sharded DES core's synchronization overhead (DESIGN.md §17).
//
// The workload is a fixed actor network: 16 actors, each receive fires a short chain of
// local events (the analogue of engine stepping, which dominates real fleet runs) and then
// forwards one message with latency >= lookahead (the analogue of router dispatch/notify).
// BM_PlainSimulator runs it on the raw sequential simcore::Simulator; BM_ShardedSimulator/N
// runs the identical event count through ShardedSimulator at N shards, so the /1 row is the
// pure cost of the windowed run loop + channel path with zero parallelism available — the
// overhead the transparent 1-shard fallback pays. The perf gate tracks /1 against the plain
// row (budget: <= 5%) and the /2 /4 /8 rows for sync-cost regressions. No thread pool is
// used: on the 1-core CI box this isolates synchronization cost from parallel speedup.
#include <benchmark/benchmark.h>

#include <vector>

#include "simcore/sharded_simulator.h"
#include "simcore/simulator.h"

namespace distserve {
namespace {

constexpr double kLookahead = 0.001;
constexpr int kActors = 16;
constexpr int kHops = 64;
constexpr int kLocalChain = 8;  // local events per receive: engine-work stand-in

// Forwarding latency and local spacing for one actor; latencies are always >= lookahead.
double HopLatency(int actor) { return kLookahead * static_cast<double>(1 + actor % 3); }

struct PlainNet {
  simcore::Simulator sim;
  int64_t received = 0;

  void Arrive(int actor, int hops) {
    ++received;
    for (int i = 1; i <= kLocalChain; ++i) {
      sim.ScheduleAt(sim.now() + static_cast<double>(i) * (kLookahead / 16.0), [] {});
    }
    if (hops <= 0) {
      return;
    }
    const int next = (actor + 5) % kActors;
    sim.ScheduleAt(sim.now() + HopLatency(actor),
                   [this, next, hops] { Arrive(next, hops - 1); });
  }
};

void BM_PlainSimulator(benchmark::State& state) {
  for (auto _ : state) {
    PlainNet net;
    for (int a = 0; a < kActors; ++a) {
      net.sim.ScheduleAt(0.0001 * static_cast<double>(a),
                         [net_ptr = &net, a] { net_ptr->Arrive(a, kHops); });
    }
    benchmark::DoNotOptimize(net.sim.Run());
    benchmark::DoNotOptimize(net.received);
  }
  state.SetItemsProcessed(state.iterations() * kActors * (kHops + 1));
}
BENCHMARK(BM_PlainSimulator);

struct ShardedNet {
  simcore::ShardedSimulator* sim = nullptr;
  std::vector<int> actor_shard;
  std::vector<int> senders;
  int64_t received = 0;

  void Arrive(int actor, int hops) {
    ++received;
    simcore::Simulator* local = sim->shard(actor_shard[static_cast<size_t>(actor)]);
    for (int i = 1; i <= kLocalChain; ++i) {
      local->ScheduleAt(local->now() + static_cast<double>(i) * (kLookahead / 16.0), [] {});
    }
    if (hops <= 0) {
      return;
    }
    const int next = (actor + 5) % kActors;
    sim->Post(senders[static_cast<size_t>(actor)], actor_shard[static_cast<size_t>(next)],
              local->now() + HopLatency(actor),
              [this, next, hops] { Arrive(next, hops - 1); });
  }
};

void BM_ShardedSimulator(benchmark::State& state) {
  const int num_shards = static_cast<int>(state.range(0));
  for (auto _ : state) {
    simcore::ShardedSimulator::Options options;
    options.num_shards = num_shards;
    options.lookahead = kLookahead;
    simcore::ShardedSimulator sim(options);
    ShardedNet net;
    net.sim = &sim;
    for (int a = 0; a < kActors; ++a) {
      net.actor_shard.push_back(a % sim.num_shards());
      net.senders.push_back(sim.AddSender(net.actor_shard.back()));
    }
    for (int a = 0; a < kActors; ++a) {
      sim.shard(net.actor_shard[static_cast<size_t>(a)])
          ->ScheduleAt(0.0001 * static_cast<double>(a),
                       [net_ptr = &net, a] { net_ptr->Arrive(a, kHops); });
    }
    benchmark::DoNotOptimize(sim.Run());
    benchmark::DoNotOptimize(net.received);
  }
  state.SetItemsProcessed(state.iterations() * kActors * (kHops + 1));
}
BENCHMARK(BM_ShardedSimulator)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace distserve

BENCHMARK_MAIN();
