// Microbenchmarks of the chunked-prefill scheduling paths — the per-step cost of the
// SARATHI-style colocated engine (chunk admission, budget split between decodes and prompt
// chunks, window-offset pricing) and of its fast-simulator mirror, plus the scenario
// annotation passes and the priority/cancellation bookkeeping they switch on. These are the
// loops fig_scenarios spends its time in; the perf-gate CI job tracks them against
// BENCH_simcore.json, and the /cache:0 vs /cache:1 variants isolate the StepTimeCache
// (results are bit-identical either way; only wall time may differ).
//
// When the DISTSERVE_PROF_JSON environment variable names a file and the build has
// DISTSERVE_PROF=ON, the accumulated zone profile is written there after the run.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <memory>
#include <vector>

#include "cluster/gpu_spec.h"
#include "common/prof.h"
#include "engine/colocated_instance.h"
#include "model/step_time_cache.h"
#include "placement/fast_sim.h"
#include "simcore/simulator.h"
#include "workload/dataset.h"
#include "workload/generator.h"
#include "workload/scenario.h"

namespace distserve {
namespace {

workload::Trace MakeTrace(double rate, int num_requests, uint64_t seed) {
  const auto dataset = workload::MakeDatasetByName("sharegpt");
  workload::TraceSpec spec;
  spec.rate = rate;
  spec.num_requests = num_requests;
  spec.seed = seed;
  return workload::GenerateTrace(spec, *dataset);
}

// The full multi-tenant scenario annotation: prefix hits shrink the chunk windows,
// priorities exercise the admission scan, cancels/deadlines exercise the teardown paths.
workload::Trace AnnotateScenario(workload::Trace trace, uint64_t seed) {
  workload::PrefixCacheSpec prefix;
  prefix.hit_rate = 0.5;
  prefix.seed = seed;
  workload::ApplyPrefixCache(&trace, prefix);
  workload::TenantSpec tenants;
  tenants.high_priority_fraction = 0.25;
  tenants.seed = seed;
  workload::ApplyTenantClasses(&trace, tenants);
  workload::CancellationSpec cancels;
  cancels.cancel_rate = 0.05;
  cancels.timeout = 30.0;
  cancels.seed = seed;
  workload::ApplyCancellations(&trace, cancels);
  return trace;
}

engine::ColocatedInstance::Options ChunkedOptions(bool cache) {
  engine::ColocatedInstance::Options options;
  options.mode = engine::ColocatedInstance::Options::SchedulingMode::kChunked;
  options.chunk_budget = 512;
  options.enable_step_time_cache = cache;
  return options;
}

int64_t RunColocated(const model::LatencyModel& lm, const workload::Trace& trace,
                     const engine::ColocatedInstance::Options& options) {
  simcore::Simulator sim;
  engine::ColocatedInstance instance(&sim, lm, 1 << 20, options, 0);
  std::vector<std::unique_ptr<engine::RequestState>> states;
  states.reserve(trace.size());
  for (const workload::Request& req : trace) {
    states.push_back(std::make_unique<engine::RequestState>(req));
    engine::RequestState* rs = states.back().get();
    sim.ScheduleAt(req.arrival_time, [&instance, rs] { instance.Enqueue(rs); });
  }
  sim.Run();
  return instance.tokens_generated();
}

// The chunked engine on a plain single-tenant trace: every step splits the token budget
// between resident decodes and prompt chunks, so this is the densest view of the chunk
// admission + window-offset pricing loop.
void BM_ChunkedEngineSteps(benchmark::State& state) {
  const model::LatencyModel lm(model::ModelSpec::Opt13B(), {1, 1},
                               cluster::GpuSpec::A100_80GB());
  const workload::Trace trace = MakeTrace(/*rate=*/8.0, /*num_requests=*/256, /*seed=*/13);
  const auto options = ChunkedOptions(state.range(0) != 0);
  int64_t tokens = 0;
  for (auto _ : state) {
    tokens = RunColocated(lm, trace, options);
    benchmark::DoNotOptimize(tokens);
  }
  state.SetItemsProcessed(state.iterations() * tokens);
}
BENCHMARK(BM_ChunkedEngineSteps)->Arg(0)->Arg(1)->ArgName("cache");

// The chunked engine under the full scenario: prefix hits, a priority admission scan,
// preemption checks, and cancel/deadline teardowns layered on the same step loop. The gap
// to BM_ChunkedEngineSteps is what the scenario bookkeeping costs.
void BM_ChunkedScenarioSteps(benchmark::State& state) {
  const model::LatencyModel lm(model::ModelSpec::Opt13B(), {1, 1},
                               cluster::GpuSpec::A100_80GB());
  const workload::Trace trace =
      AnnotateScenario(MakeTrace(/*rate=*/8.0, /*num_requests=*/256, /*seed=*/13), 13);
  const auto options = ChunkedOptions(state.range(0) != 0);
  int64_t tokens = 0;
  for (auto _ : state) {
    tokens = RunColocated(lm, trace, options);
    benchmark::DoNotOptimize(tokens);
  }
  state.SetItemsProcessed(state.iterations() * tokens);
}
BENCHMARK(BM_ChunkedScenarioSteps)->Arg(0)->Arg(1)->ArgName("cache");

// The fast-simulator mirror of the chunked engine — the inner loop of every chunked goodput
// probe in fig_scenarios' search section.
void BM_FastSimChunked(benchmark::State& state) {
  const model::LatencyModel lm(model::ModelSpec::Opt13B(), {1, 1},
                               cluster::GpuSpec::A100_80GB());
  const workload::Trace trace = MakeTrace(/*rate=*/8.0, /*num_requests=*/2000, /*seed=*/17);
  model::StepTimeCache step_cache(&lm);
  placement::ColocatedFastConfig config;
  config.num_instances = 1;
  config.chunk_budget = 512;
  config.kv_capacity_tokens = 1 << 20;
  if (state.range(0) != 0) {
    config.step_cache = &step_cache;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::SimulateColocated(lm, trace, config));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_FastSimChunked)->Arg(0)->Arg(1)->ArgName("cache");

// The three scenario annotation passes over a 4096-request trace (no simulation): the fixed
// per-trace cost fig_scenarios pays before every cell.
void BM_ScenarioAnnotation(benchmark::State& state) {
  const workload::Trace trace = MakeTrace(/*rate=*/8.0, /*num_requests=*/4096, /*seed=*/29);
  for (auto _ : state) {
    workload::Trace annotated = AnnotateScenario(trace, 29);
    benchmark::DoNotOptimize(workload::ComputeScenarioStats(annotated));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(trace.size()));
}
BENCHMARK(BM_ScenarioAnnotation);

}  // namespace
}  // namespace distserve

int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  if (const char* path = std::getenv("DISTSERVE_PROF_JSON");
      path != nullptr && *path != '\0') {
    distserve::prof::WriteJsonFile(path);
  }
  return 0;
}
