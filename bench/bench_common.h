// Shared infrastructure for the paper-reproduction benches.
//
// Encodes Table 1 (application -> model, SLOs, dataset), provides rate/SLO-scale sweeps over
// any servable system, and prints aligned tables. Every bench binary prints the rows/series
// of its corresponding paper exhibit; EXPERIMENTS.md records paper-vs-measured shapes.
#ifndef DISTSERVE_BENCH_BENCH_COMMON_H_
#define DISTSERVE_BENCH_BENCH_COMMON_H_

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "baselines/vllm_system.h"
#include "cluster/spec_parse.h"
#include "common/float_format.h"
#include "common/thread_pool.h"
#include "metrics/collector.h"
#include "placement/algorithms.h"
#include "placement/goodput_cache_store.h"
#include "placement/sweep.h"
#include "serving/serving_system.h"
#include "trace/recorder.h"
#include "workload/dataset.h"
#include "workload/generator.h"

namespace distserve::bench {

// --- Common flag parsing (one table shared by every bench main) -------------------------
//
// Each bench accepts a subset of the standard flags; the subset is a bitmask and both the
// parser and the usage line are driven by the same table, so a new common flag is one table
// row, not N copies of a strcmp chain.

struct CommonFlags {
  bool smoke = false;          // --smoke: reduced sizes for CI
  bool analytic_tier = true;   // --no-analytic-tier clears it (DESIGN.md §15 escape hatch)
  int shards = 1;              // --shards=N / DISTSERVE_SHARDS: simulation shards + sweep
                               // workers (N-1 pool threads); 1 = the sequential path
  std::string json_path;       // --json=PATH
  std::string goodput_cache;   // --goodput-cache=PATH (DISTSERVE_GOODPUT_CACHE fallback)
  std::string trace_path;      // --trace=PATH
  std::string cluster_spec;    // --cluster=SPEC (caller may preset a default)
  double prefix_hit = -1.0;    // --prefix-hit=F in [0,1]; negative = unset (bench default)
  int64_t chunk_budget = 0;    // --chunk-budget=N > 0; 0 = unset (bench default)
  double tenants = -1.0;       // --tenants=F in [0,1]; negative = unset (bench default)
};

enum CommonFlagBits : unsigned {
  kFlagSmoke = 1u << 0,
  kFlagJson = 1u << 1,
  kFlagGoodputCache = 1u << 2,
  kFlagTrace = 1u << 3,
  kFlagCluster = 1u << 4,
  kFlagNoAnalyticTier = 1u << 5,
  kFlagShards = 1u << 6,
  kFlagPrefixHit = 1u << 7,
  kFlagChunkBudget = 1u << 8,
  kFlagTenants = 1u << 9,
};

// Strict integer parse for --shards=N / DISTSERVE_SHARDS: the whole token must be a base-10
// integer in [1, 1<<20]. (std::atoi would accept "4x" as 4 and turn "abc" into a misleading
// "--shards must be >= 1" failure.)
inline bool ParseShardsValue(const char* v, int* out) {
  if (v == nullptr || *v == '\0') {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const long n = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || errno == ERANGE || n < 1 || n > (1 << 20)) {
    return false;
  }
  *out = static_cast<int>(n);
  return true;
}

// Strict fraction parse for --prefix-hit=F / --tenants=F: the whole token must be a decimal
// number in [0, 1].
inline bool ParseUnitFraction(const char* v, double* out) {
  if (v == nullptr || *v == '\0') {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  const double f = std::strtod(v, &end);
  if (end == v || *end != '\0' || errno == ERANGE || f < 0.0 || f > 1.0) {
    return false;
  }
  *out = f;
  return true;
}

// Strict integer parse for --chunk-budget=N: a base-10 integer in [1, 1<<20] (tokens per
// step; budgets beyond a megabatch are surely a typo).
inline bool ParseChunkBudgetValue(const char* v, int64_t* out) {
  int n = 0;
  if (!ParseShardsValue(v, &n)) {
    return false;
  }
  *out = n;
  return true;
}

// Parses argv against the accepted subset. DISTSERVE_SHARDS seeds `shards` before parsing, so
// an explicit --shards=N wins over the environment. Returns false (after a specific error
// line plus a usage line built from the same table) on any unknown flag, a value-taking flag
// with a missing or empty `=VALUE`, a value handed to a valueless flag, or a value the flag's
// validator rejects (non-numeric/zero/negative --shards).
inline bool ParseCommonFlags(int argc, char** argv, unsigned accepted, CommonFlags* flags) {
  struct FlagEntry {
    unsigned bit;
    const char* name;  // without the "=VALUE" suffix
    bool takes_value;
    const char* usage;
    const char* value_hint;  // appended to the error when apply() rejects the value
    bool (*apply)(CommonFlags*, const char*);
  };
  static const FlagEntry kTable[] = {
      {kFlagSmoke, "--smoke", false, "[--smoke]", nullptr,
       [](CommonFlags* f, const char*) {
         f->smoke = true;
         return true;
       }},
      {kFlagJson, "--json", true, "[--json=PATH]", nullptr,
       [](CommonFlags* f, const char* v) {
         f->json_path = v;
         return true;
       }},
      {kFlagGoodputCache, "--goodput-cache", true, "[--goodput-cache=PATH]", nullptr,
       [](CommonFlags* f, const char* v) {
         f->goodput_cache = v;
         return true;
       }},
      {kFlagTrace, "--trace", true, "[--trace=PATH]", nullptr,
       [](CommonFlags* f, const char* v) {
         f->trace_path = v;
         return true;
       }},
      {kFlagNoAnalyticTier, "--no-analytic-tier", false, "[--no-analytic-tier]", nullptr,
       [](CommonFlags* f, const char*) {
         f->analytic_tier = false;
         return true;
       }},
      {kFlagCluster, "--cluster", true, "[--cluster=SPEC]", nullptr,
       [](CommonFlags* f, const char* v) {
         f->cluster_spec = v;
         return true;
       }},
      {kFlagShards, "--shards", true, "[--shards=N]", "expected an integer >= 1",
       [](CommonFlags* f, const char* v) { return ParseShardsValue(v, &f->shards); }},
      {kFlagPrefixHit, "--prefix-hit", true, "[--prefix-hit=F]",
       "expected a fraction in [0, 1]",
       [](CommonFlags* f, const char* v) { return ParseUnitFraction(v, &f->prefix_hit); }},
      {kFlagChunkBudget, "--chunk-budget", true, "[--chunk-budget=N]",
       "expected an integer >= 1",
       [](CommonFlags* f, const char* v) { return ParseChunkBudgetValue(v, &f->chunk_budget); }},
      {kFlagTenants, "--tenants", true, "[--tenants=F]", "expected a fraction in [0, 1]",
       [](CommonFlags* f, const char* v) { return ParseUnitFraction(v, &f->tenants); }},
  };
  bool ok = true;
  if ((accepted & kFlagShards) != 0) {
    if (const char* env = std::getenv("DISTSERVE_SHARDS")) {
      if (!ParseShardsValue(env, &flags->shards)) {
        std::fprintf(stderr, "DISTSERVE_SHARDS=%s: expected an integer >= 1\n", env);
        ok = false;
      }
    }
  }
  for (int i = 1; i < argc && ok; ++i) {
    const char* arg = argv[i];
    const FlagEntry* match = nullptr;
    const char* value = nullptr;
    for (const FlagEntry& entry : kTable) {
      if ((accepted & entry.bit) == 0) {
        continue;
      }
      const size_t len = std::strlen(entry.name);
      if (std::strncmp(arg, entry.name, len) != 0) {
        continue;
      }
      if (arg[len] != '\0' && arg[len] != '=') {
        continue;  // different flag sharing a prefix (e.g. --jsonify)
      }
      match = &entry;
      value = arg[len] == '=' ? arg + len + 1 : nullptr;
      break;
    }
    if (match == nullptr) {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      ok = false;
    } else if (match->takes_value && (value == nullptr || *value == '\0')) {
      std::fprintf(stderr, "%s requires a value: %s=VALUE\n", match->name, match->name);
      ok = false;
    } else if (!match->takes_value && value != nullptr) {
      std::fprintf(stderr, "%s does not take a value\n", match->name);
      ok = false;
    } else if (!match->apply(flags, value)) {
      std::fprintf(stderr, "%s=%s: %s\n", match->name, value,
                   match->value_hint != nullptr ? match->value_hint : "invalid value");
      ok = false;
    }
  }
  if (ok && flags->shards < 1) {
    std::fprintf(stderr, "--shards must be >= 1\n");
    ok = false;
  }
  if (!ok) {
    std::string usage = "usage: ";
    usage += argv[0];
    for (const FlagEntry& entry : kTable) {
      if ((accepted & entry.bit) != 0) {
        usage += " ";
        usage += entry.usage;
      }
    }
    std::fprintf(stderr, "%s\n", usage.c_str());
  }
  return ok;
}

// Resolves --cluster for benches that plan homogeneous clusters: empty spec keeps the paper
// testbed (and prints nothing, so default stdout stays byte-identical); a one-pool spec
// substitutes that pool and prints the banner; multi-pool specs are rejected toward
// fig_hetero. Returns false on error.
inline bool ResolveSinglePoolCluster(const CommonFlags& flags, const char* bench_name,
                                     cluster::ClusterSpec* out) {
  if (flags.cluster_spec.empty()) {
    return true;
  }
  std::string error;
  const auto fleet = cluster::ParseClusterSpec(flags.cluster_spec, &error);
  if (!fleet) {
    std::fprintf(stderr, "--cluster=%s: %s\n", flags.cluster_spec.c_str(), error.c_str());
    return false;
  }
  if (fleet->pools.size() != 1) {
    std::fprintf(stderr,
                 "--cluster=%s: %s plans homogeneous clusters; use fig_hetero for "
                 "multi-pool fleets\n",
                 flags.cluster_spec.c_str(), bench_name);
    return false;
  }
  *out = fleet->PoolCluster(0);
  std::printf("# cluster: %s (%s)\n", cluster::FleetToString(*fleet).c_str(),
              out->gpu.name.c_str());
  return true;
}

// The worker pool implied by --shards=N: N-1 threads plus the calling thread, null (serial
// everywhere, no pool construction) for N=1. Handed to sweeps and the planner alike.
inline std::unique_ptr<ThreadPool> MakeSweepPool(int shards) {
  return shards > 1 ? std::make_unique<ThreadPool>(shards - 1) : nullptr;
}

// Wall-clock timer for the standard `wall_ms` bench field.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Minimal flat-JSON emitter for bench artifacts. Every bench artifact carries `bench` (the
// binary's name) and `wall_ms` (total wall-clock of the measured section) so the CI perf
// trajectory can compare runs across commits; extra fields are bench-specific. Values passed
// to AddRaw are embedded verbatim (numbers, booleans, or nested JSON).
class BenchJson {
 public:
  explicit BenchJson(std::string bench_name) { AddString("bench", std::move(bench_name)); }

  void AddString(const std::string& key, std::string value) {
    fields_.emplace_back(key, "\"" + std::move(value) + "\"");
  }
  // Human-scale rendering ("%.6g") for timings and rates read by people. NOT round-trip
  // exact: a value persisted for later bitwise reuse must go through AddDoubleExact.
  void AddDouble(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    fields_.emplace_back(key, buf);
  }
  // Exact mode ("%.17g", common/float_format.h): round-trips every binary64 bit pattern, for
  // fields downstream tooling compares or reuses exactly (persisted goodputs, rate hints).
  void AddDoubleExact(const std::string& key, double value) {
    fields_.emplace_back(key, FormatDoubleExact(value));
  }
  void AddInt(const std::string& key, int64_t value) {
    fields_.emplace_back(key, std::to_string(value));
  }
  void AddBool(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
  }
  void AddRaw(const std::string& key, std::string raw_json) {
    fields_.emplace_back(key, std::move(raw_json));
  }
  void AddWallMs(const WallTimer& timer) { AddDouble("wall_ms", timer.ms()); }

  std::string Render() const {
    std::string out = "{\n";
    for (size_t i = 0; i < fields_.size(); ++i) {
      out += "  \"" + fields_[i].first + "\": " + fields_[i].second;
      out += (i + 1 < fields_.size()) ? ",\n" : "\n";
    }
    out += "}\n";
    return out;
  }

  bool WriteTo(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
      return false;
    }
    out << Render();
    return out.good();
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

// Owns one process run's persistent goodput cache: loads `path` on construction (stale
// calibrations rejected by coefficient hash), saves the merged cache on Save()/destruction.
// The standard plumbing behind the benches' `--goodput-cache=PATH` flag (env
// DISTSERVE_GOODPUT_CACHE fallback via GoodputCacheStore::ResolvePath); an empty path
// disables persistence and cache() returns nullptr, the pre-flag behavior.
class PersistentGoodputCache {
 public:
  PersistentGoodputCache(std::string path, const cluster::GpuSpec& gpu)
      : PersistentGoodputCache(std::move(path),
                               std::vector<model::LatencyCoefficients>{
                                   model::LatencyCoefficients::FromGpu(gpu)}) {}

  // Fleet variant: the calibration hash spans every pool's coefficients (a one-pool fleet
  // hashes identically to the single-GPU constructor, so the same cache file serves both).
  PersistentGoodputCache(std::string path, const cluster::HeteroClusterSpec& fleet)
      : PersistentGoodputCache(std::move(path), FleetCoefficients(fleet)) {}

  PersistentGoodputCache(std::string path, const std::vector<model::LatencyCoefficients>& coeffs)
      : path_(std::move(path)),
        hash_(placement::GoodputCacheStore::CalibrationHash(coeffs)) {
    if (!path_.empty()) {
      load_ = placement::GoodputCacheStore::Load(path_, hash_, &cache_);
    }
  }
  ~PersistentGoodputCache() { Save(); }
  PersistentGoodputCache(const PersistentGoodputCache&) = delete;
  PersistentGoodputCache& operator=(const PersistentGoodputCache&) = delete;

  bool enabled() const { return !path_.empty(); }
  placement::GoodputCache* cache() { return enabled() ? &cache_ : nullptr; }
  const placement::GoodputCacheStore::LoadResult& load_result() const { return load_; }

  bool Save() {
    return enabled() ? placement::GoodputCacheStore::Save(path_, hash_, cache_) : false;
  }

  // Cache-trajectory fields for the bench's JSON artifact (hits/misses land in CI's
  // perf-smoke hit-rate report). Never printed to stdout: warm and cold runs must stay
  // byte-identical there.
  void AddJsonFields(BenchJson& json) const {
    const placement::GoodputCache::Stats stats = cache_.stats();
    json.AddInt("goodput_cache_hits", stats.hits);
    json.AddInt("goodput_cache_misses", stats.misses);
    json.AddInt("goodput_cache_entries", stats.entries);
    json.AddInt("goodput_cache_hints", stats.hint_entries);
    json.AddInt("goodput_cache_loaded", load_.values_loaded);
  }

 private:
  static std::vector<model::LatencyCoefficients> FleetCoefficients(
      const cluster::HeteroClusterSpec& fleet) {
    std::vector<model::LatencyCoefficients> coeffs;
    coeffs.reserve(fleet.pools.size());
    for (const cluster::GpuPool& pool : fleet.pools) {
      coeffs.push_back(model::LatencyCoefficients::FromGpu(pool.gpu));
    }
    return coeffs;
  }

  std::string path_;
  uint64_t hash_;
  placement::GoodputCache cache_;
  placement::GoodputCacheStore::LoadResult load_;
};

// Accumulates planner search-cost accounting (PlannerResult's skip/probe breakdown) across a
// bench's planning runs for its JSON artifact. Like the goodput-cache stats, these are never
// printed to stdout — the determinism job diffs stdout across tier-on/tier-off runs.
struct PlannerAccounting {
  int64_t configs_evaluated = 0;
  int64_t simulations_run = 0;
  int64_t simulations_skipped = 0;
  int64_t cache_hits = 0;
  int64_t roofline_pruned = 0;
  int64_t analytic_rejected = 0;
  int64_t pair_unneeded = 0;
  int64_t pairs_considered = 0;
  int64_t pairs_pruned_roofline = 0;
  int64_t pairs_pruned_analytic = 0;
  int64_t probes = 0;
  int64_t trace_cache_hits = 0;

  void Add(const placement::PlannerResult& r) {
    configs_evaluated += r.configs_evaluated;
    simulations_run += r.simulations_run;
    simulations_skipped += r.simulations_skipped;
    cache_hits += r.cache_hits;
    roofline_pruned += r.roofline_pruned;
    analytic_rejected += r.analytic_rejected;
    pair_unneeded += r.pair_unneeded;
    pairs_considered += r.pairs_considered;
    pairs_pruned_roofline += r.pairs_pruned_roofline;
    pairs_pruned_analytic += r.pairs_pruned_analytic;
    probes += r.probes;
    trace_cache_hits += r.trace_cache_hits;
  }

  void AddJsonFields(BenchJson& json) const {
    json.AddInt("planner_configs_evaluated", configs_evaluated);
    json.AddInt("planner_simulations_run", simulations_run);
    json.AddInt("planner_simulations_skipped", simulations_skipped);
    json.AddInt("planner_cache_hits", cache_hits);
    json.AddInt("planner_roofline_pruned", roofline_pruned);
    json.AddInt("planner_analytic_rejected", analytic_rejected);
    json.AddInt("planner_pair_unneeded", pair_unneeded);
    json.AddInt("planner_pairs_considered", pairs_considered);
    json.AddInt("planner_pairs_pruned_roofline", pairs_pruned_roofline);
    json.AddInt("planner_pairs_pruned_analytic", pairs_pruned_analytic);
    json.AddInt("planner_probes", probes);
    json.AddInt("planner_trace_cache_hits", trace_cache_hits);
  }
};

// One Table-1 row.
struct Application {
  std::string name;
  model::ModelSpec model;
  metrics::SloSpec slo;
  std::string dataset_name;  // for MakeDatasetByName
  int vllm_tp;               // the paper's vLLM intra-op setting for this model
};

inline Application ChatbotOpt13B() {
  return {"chatbot-13b", model::ModelSpec::Opt13B(), {0.2, 0.1}, "sharegpt", 1};
}
inline Application ChatbotOpt66B() {
  return {"chatbot-66b", model::ModelSpec::Opt66B(), {0.4, 0.1}, "sharegpt", 4};
}
inline Application ChatbotOpt175B() {
  return {"chatbot-175b", model::ModelSpec::Opt175B(), {4.0, 0.2}, "sharegpt", 8};
}
inline Application CodeCompletionOpt66B() {
  return {"code-66b", model::ModelSpec::Opt66B(), {0.125, 0.2}, "humaneval", 4};
}
inline Application SummarizationOpt66B() {
  return {"summarization-66b", model::ModelSpec::Opt66B(), {15.0, 0.15}, "longbench", 4};
}

// A servable system under test: returns per-request records for a trace.
using RunFn = std::function<metrics::Collector(const workload::Trace&)>;

// Builds a fresh DistServe engine run bound to `plan` (systems are single-use). A non-null
// `recorder` collects per-request spans across every run of the returned RunFn (each run gets
// its own run index; see trace/recorder.h); results are bit-identical with or without it.
inline RunFn MakeDistServeRunner(const model::ModelSpec& model,
                                 const cluster::ClusterSpec& cluster,
                                 const placement::PlacementPlan& plan,
                                 trace::Recorder* recorder = nullptr) {
  return [model, cluster, plan, recorder](const workload::Trace& trace) {
    serving::ServingConfig config;
    config.model = model;
    config.cluster = cluster;
    config.plan = plan;
    config.recorder = recorder;
    serving::ServingSystem system(std::move(config));
    return system.Run(trace);
  };
}

inline RunFn MakeVllmRunner(const model::ModelSpec& model, const cluster::ClusterSpec& cluster,
                            int tp, int num_instances,
                            engine::ColocatedInstance::Options options = {},
                            trace::Recorder* recorder = nullptr) {
  return [model, cluster, tp, num_instances, options, recorder](const workload::Trace& trace) {
    baselines::VllmConfig config;
    config.model = model;
    config.cluster = cluster;
    config.par = {tp, 1};
    config.num_instances = num_instances;
    config.engine_options = options;
    config.recorder = recorder;
    baselines::VllmSystem system(std::move(config));
    return system.Run(trace);
  };
}

// Planner with bench-appropriate fidelity. Results are deterministic for a fixed seed.
inline placement::PlannerInputs MakePlannerInputs(const Application& app,
                                                  const cluster::ClusterSpec& cluster,
                                                  const workload::Dataset* dataset,
                                                  double traffic_rate) {
  placement::PlannerInputs inputs;
  inputs.model = app.model;
  inputs.cluster = cluster;
  inputs.dataset = dataset;
  inputs.slo = app.slo;
  inputs.traffic_rate = traffic_rate;
  inputs.search.num_requests = 300;
  inputs.search.min_trace_duration = 40.0;
  inputs.search.max_requests = 4000;
  inputs.search.bisection_iters = 7;
  return inputs;
}

struct SweepPoint {
  double x = 0.0;  // per-GPU rate, or SLO scale
  metrics::Attainment attainment;
};

// Attainment vs per-GPU rate (Figure 8/9 top rows). `total_gpus` converts the per-GPU axis to
// an offered rate. Points are independent simulations, fanned across `pool` work-queue style
// (placement/sweep.h) and collected in rate order — results and all downstream printing are
// byte-identical at any worker count; null pool is the serial reference.
inline std::vector<SweepPoint> RateSweep(const RunFn& run, const workload::Dataset& dataset,
                                         const metrics::SloSpec& slo, int total_gpus,
                                         const std::vector<double>& per_gpu_rates,
                                         int num_requests, uint64_t seed,
                                         ThreadPool* pool = nullptr) {
  std::vector<std::function<SweepPoint()>> tasks;
  tasks.reserve(per_gpu_rates.size());
  for (double per_gpu : per_gpu_rates) {
    tasks.push_back([&run, &dataset, &slo, total_gpus, num_requests, seed, per_gpu] {
      workload::TraceSpec spec;
      spec.rate = per_gpu * total_gpus;
      spec.num_requests = num_requests;
      spec.seed = seed;
      const metrics::Collector results = run(workload::GenerateTrace(spec, dataset));
      return SweepPoint{per_gpu, results.ComputeAttainment(slo)};
    });
  }
  return placement::RunSweepTasks<SweepPoint>(pool, std::move(tasks));
}

// Attainment vs SLO scale at a fixed rate (Figure 8/9 bottom rows). Scale < 1 tightens.
inline std::vector<SweepPoint> SloScaleSweep(const RunFn& run, const workload::Dataset& dataset,
                                             const metrics::SloSpec& base_slo, double rate,
                                             const std::vector<double>& scales,
                                             int num_requests, uint64_t seed) {
  workload::TraceSpec spec;
  spec.rate = rate;
  spec.num_requests = num_requests;
  spec.seed = seed;
  const workload::Trace trace = workload::GenerateTrace(spec, dataset);
  const metrics::Collector results = run(trace);
  std::vector<SweepPoint> points;
  for (double scale : scales) {
    points.push_back({scale, results.ComputeAttainment(base_slo.Scaled(scale))});
  }
  return points;
}

// Largest x whose attainment meets the target (0 when none); assumes points sorted by x with
// attainment non-increasing (rate sweeps). For SLO-scale sweeps use SmallestMeeting instead.
inline double LargestMeeting(const std::vector<SweepPoint>& points, double target) {
  double best = 0.0;
  for (const SweepPoint& p : points) {
    if (p.attainment.both >= target) {
      best = p.x;
    }
  }
  return best;
}

inline double SmallestMeeting(const std::vector<SweepPoint>& points, double target) {
  double best = 0.0;
  for (const SweepPoint& p : points) {
    if (p.attainment.both >= target && (best == 0.0 || p.x < best)) {
      best = p.x;
    }
  }
  return best;
}

inline void PrintSweepHeader(const char* x_name) {
  std::printf("%-10s %-14s %10s %10s %10s\n", x_name, "system", "both", "ttft-only",
              "tpot-only");
}

inline void PrintSweep(const char* system, const std::vector<SweepPoint>& points) {
  for (const SweepPoint& p : points) {
    std::printf("%-10.3f %-14s %9.1f%% %9.1f%% %9.1f%%\n", p.x, system,
                100.0 * p.attainment.both, 100.0 * p.attainment.ttft_only,
                100.0 * p.attainment.tpot_only);
  }
}

inline void PrintBanner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// Full Figure-8/9 style comparison for one application: plan DistServe with Algorithm 2 on
// the paper testbed, size vLLM (paper tp, replicated) to the same GPU count, then sweep
// attainment vs per-GPU rate and vs SLO scale, and report the 90%-attainment goodput and
// tightest-SLO ratios. `goodput_cache` (optional) memoizes the planner's simulations; cached
// goodputs are exact, so a warm run's stdout is byte-identical to a cold one.
// `use_analytic_tier` toggles the tier-1 pre-filter (DESIGN.md §15) for the planning step —
// the chosen plan, and therefore stdout, is bit-identical either way (the CI determinism job
// diffs exactly this); only the planner's cost accounting moves, surfaced through the optional
// `planner_out`.
// `cluster` defaults to the paper testbed; a bench's --cluster flag may substitute any
// homogeneous cluster (e.g. one pool of a parsed fleet) — the default produces stdout
// byte-identical to the pre-flag behavior.
// `pool` (from --shards=N) speculates planner candidates and fans the rate sweeps across
// workers; results and stdout are byte-identical at any worker count. Sweeps fall back to
// serial while a recorder is attached (spans from concurrent runs would interleave).
inline void RunEndToEndComparison(const Application& app, int num_requests, uint64_t seed,
                                  placement::GoodputCache* goodput_cache = nullptr,
                                  trace::Recorder* recorder = nullptr,
                                  bool use_analytic_tier = true,
                                  placement::PlannerResult* planner_out = nullptr,
                                  const cluster::ClusterSpec& cluster =
                                      cluster::ClusterSpec::PaperTestbed(),
                                  ThreadPool* pool = nullptr) {
  const auto dataset = workload::MakeDatasetByName(app.dataset_name);

  // DistServe: one Algorithm-2 segment pair.
  placement::PlannerInputs inputs = MakePlannerInputs(app, cluster, dataset.get(), 1.0);
  inputs.goodput_cache = goodput_cache;
  inputs.use_analytic_tier = use_analytic_tier;
  inputs.pool = pool;
  const placement::PlannerResult planned = placement::LowNodeAffinityPlacement(inputs);
  if (planner_out != nullptr) {
    *planner_out = planned;
  }
  placement::PlacementPlan plan = planned.plan;
  plan.num_prefill = 1;
  plan.num_decode = 1;
  const int ds_gpus = plan.total_gpus();

  // vLLM: the paper's tp for this model, replicated to (at least) the same GPU count.
  const int vllm_instances = std::max(1, ds_gpus / app.vllm_tp);
  const int vllm_gpus = vllm_instances * app.vllm_tp;

  PrintBanner("End-to-end: " + app.name + " (" + app.model.name + ", " +
              dataset->name() + ")");
  std::printf("# SLO: TTFT<=%.3gs TPOT<=%.3gs | DistServe plan: %s\n", app.slo.ttft,
              app.slo.tpot, plan.ToString().c_str());
  std::printf("# vLLM baseline: tp=%d x %d instances (%d GPUs vs DistServe %d GPUs)\n",
              app.vllm_tp, vllm_instances, vllm_gpus, ds_gpus);

  const RunFn ds_run = MakeDistServeRunner(app.model, cluster, plan, recorder);
  const RunFn vllm_run =
      MakeVllmRunner(app.model, cluster, app.vllm_tp, vllm_instances, {}, recorder);

  // Rate sweep around the planner's per-GPU goodput estimate.
  const double est_per_gpu =
      std::max(plan.per_gpu_goodput(), 0.05 / ds_gpus);
  std::vector<double> rates;
  for (double frac : {0.1, 0.25, 0.5, 0.7, 0.85, 1.0, 1.15, 1.3}) {
    rates.push_back(est_per_gpu * frac);
  }
  // Serial while tracing: a shared recorder must see runs one at a time, in order.
  ThreadPool* sweep_pool = recorder == nullptr ? pool : nullptr;
  std::printf("\n-- SLO attainment vs per-GPU rate (req/s/GPU) --\n");
  PrintSweepHeader("rate/gpu");
  const auto ds_rate =
      RateSweep(ds_run, *dataset, app.slo, ds_gpus, rates, num_requests, seed, sweep_pool);
  PrintSweep("DistServe", ds_rate);
  const auto vllm_rate =
      RateSweep(vllm_run, *dataset, app.slo, vllm_gpus, rates, num_requests, seed, sweep_pool);
  PrintSweep("vLLM", vllm_rate);
  const double ds_goodput = LargestMeeting(ds_rate, 0.9);
  const double vllm_goodput = LargestMeeting(vllm_rate, 0.9);
  if (vllm_goodput > 0.0) {
    std::printf("90%%-attainment per-GPU goodput: DistServe=%.3f vLLM=%.3f  (%.2fx)\n",
                ds_goodput, vllm_goodput, ds_goodput / vllm_goodput);
  } else {
    std::printf(
        "90%%-attainment per-GPU goodput: DistServe=%.3f vLLM=<%.3f (below sampled range) "
        " (>= %.2fx)\n",
        ds_goodput, rates.front(), ds_goodput / rates.front());
  }

  // SLO-scale sweep at a moderate shared rate.
  const double scale_rate_per_gpu = est_per_gpu * 0.6;
  std::printf("\n-- SLO attainment vs SLO scale (rate fixed at %.3f req/s/GPU) --\n",
              scale_rate_per_gpu);
  const std::vector<double> scales = {0.25, 0.4, 0.6, 0.8, 1.0, 1.5, 2.0};
  PrintSweepHeader("slo-scale");
  const auto ds_scale = SloScaleSweep(ds_run, *dataset, app.slo, scale_rate_per_gpu * ds_gpus,
                                      scales, num_requests, seed);
  PrintSweep("DistServe", ds_scale);
  const auto vllm_scale = SloScaleSweep(vllm_run, *dataset, app.slo,
                                        scale_rate_per_gpu * vllm_gpus, scales, num_requests,
                                        seed);
  PrintSweep("vLLM", vllm_scale);
  const double ds_tightest = SmallestMeeting(ds_scale, 0.9);
  const double vllm_tightest = SmallestMeeting(vllm_scale, 0.9);
  std::printf("tightest SLO scale at 90%%: DistServe=%.2f vLLM=%.2f  (%.2fx more stringent)\n",
              ds_tightest, vllm_tightest,
              ds_tightest > 0 ? vllm_tightest / ds_tightest : 0.0);
}

}  // namespace distserve::bench

#endif  // DISTSERVE_BENCH_BENCH_COMMON_H_
