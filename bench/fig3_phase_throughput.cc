// Figure 3: phase throughput characteristics (OPT-13B, one A100).
//
// (a) Prefill throughput (tokens/s) vs input length for batch sizes 1/2/4/8: throughput climbs
//     until the GPU saturates around ~500-1000 total tokens, then flattens (and eventually
//     declines as quadratic attention bites) — batching prefills only helps below L_m.
// (b) Decode throughput vs batch size for several context lengths: near-linear growth until
//     the compute roofline, motivating large decode batches.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace distserve {

int Main() {
  const model::ModelSpec spec = model::ModelSpec::Opt13B();
  const model::LatencyModel lm(spec, {1, 1}, cluster::ClusterSpec::PaperTestbed().gpu);

  bench::PrintBanner("Figure 3a: prefill throughput (tokens/s) vs input length x batch size");
  std::printf("%-12s %12s %12s %12s %12s\n", "input-len", "batch=1", "batch=2", "batch=4",
              "batch=8");
  for (int len : {32, 64, 128, 256, 512, 768, 1024, 1536, 2048}) {
    std::printf("%-12d", len);
    for (int batch : {1, 2, 4, 8}) {
      std::vector<int> lens(static_cast<size_t>(batch), len);
      const double time = lm.PrefillFullTime(lens);
      std::printf(" %11.0f", static_cast<double>(batch) * len / time);
    }
    std::printf("\n");
  }
  std::printf("# compute-saturation threshold L_m for this model/GPU: %lld tokens\n",
              static_cast<long long>(lm.ComputeSaturationTokens()));

  bench::PrintBanner("Figure 3b: decode throughput (tokens/s) vs batch size x context length");
  std::printf("%-12s %12s %12s %12s\n", "batch", "ctx=128", "ctx=512", "ctx=1024");
  for (int batch : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    std::printf("%-12d", batch);
    for (int ctx : {128, 512, 1024}) {
      const double time =
          lm.DecodeStepFullTime(batch, static_cast<int64_t>(batch) * ctx);
      std::printf(" %11.0f", static_cast<double>(batch) / time);
    }
    std::printf("\n");
  }
  return 0;
}

}  // namespace distserve

int main() { return distserve::Main(); }
