// Microbenchmarks of the DES core: event scheduling/firing throughput and an end-to-end
// engine-step rate. A full Figure-8 sweep executes tens of millions of events; the DES core
// must stay in the tens-of-nanoseconds-per-event range.
#include <benchmark/benchmark.h>

#include "cluster/gpu_spec.h"
#include "engine/decode_instance.h"
#include "simcore/simulator.h"
#include "workload/generator.h"

namespace distserve {
namespace {

void BM_ScheduleAndFire(benchmark::State& state) {
  for (auto _ : state) {
    simcore::Simulator sim;
    for (int i = 0; i < 1024; ++i) {
      sim.ScheduleAt(static_cast<double>((i * 7919) % 1000), [] {});
    }
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ScheduleAndFire);

void BM_CancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    simcore::Simulator sim;
    std::vector<simcore::EventHandle> handles;
    handles.reserve(1024);
    for (int i = 0; i < 1024; ++i) {
      handles.push_back(sim.ScheduleAt(static_cast<double>(i), [] {}));
    }
    for (size_t i = 0; i < handles.size(); i += 2) {
      handles[i].Cancel();
    }
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_CancelHeavy);

// The compaction stress case: a rolling window of speculative deadlines where almost every
// scheduled event is cancelled before it can fire (the pattern that motivated heap
// compaction — with lazy deletion alone the heap holds the whole history).
void BM_CancelChurn(benchmark::State& state) {
  constexpr int kWindow = 256;
  constexpr int kRounds = 4096;
  for (auto _ : state) {
    simcore::Simulator sim;
    std::vector<simcore::EventHandle> window;
    window.reserve(kWindow);
    for (int i = 0; i < kRounds; ++i) {
      if (window.size() == kWindow) {
        // Cancel the oldest deadline, as a request that completed in time would.
        window.front().Cancel();
        window.erase(window.begin());
      }
      window.push_back(sim.ScheduleAt(static_cast<double>(i) + 1000.0, [] {}));
    }
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(state.iterations() * kRounds);
}
BENCHMARK(BM_CancelChurn);

void BM_DecodeInstanceSteps(benchmark::State& state) {
  const model::LatencyModel lm(model::ModelSpec::Opt13B(), {1, 1},
                               cluster::GpuSpec::A100_80GB());
  for (auto _ : state) {
    simcore::Simulator sim;
    engine::DecodeInstance instance(&sim, lm, 1 << 20, {}, 0);
    std::vector<std::unique_ptr<engine::RequestState>> states;
    for (int i = 0; i < 64; ++i) {
      workload::Request req;
      req.id = i;
      req.input_len = 128;
      req.output_len = 32;
      states.push_back(std::make_unique<engine::RequestState>(req));
      instance.Submit(states.back().get());
    }
    sim.Run();
    benchmark::DoNotOptimize(instance.tokens_generated());
  }
  state.SetItemsProcessed(state.iterations() * 64 * 31);
}
BENCHMARK(BM_DecodeInstanceSteps);

}  // namespace
}  // namespace distserve

BENCHMARK_MAIN();
