// Microbenchmarks of the DES core: event scheduling/firing throughput and an end-to-end
// engine-step rate. A full Figure-8 sweep executes tens of millions of events; the DES core
// must stay in the tens-of-nanoseconds-per-event range.
#include <benchmark/benchmark.h>

#include "cluster/gpu_spec.h"
#include "engine/decode_instance.h"
#include "simcore/simulator.h"
#include "workload/generator.h"

namespace distserve {
namespace {

void BM_ScheduleAndFire(benchmark::State& state) {
  for (auto _ : state) {
    simcore::Simulator sim;
    for (int i = 0; i < 1024; ++i) {
      sim.ScheduleAt(static_cast<double>((i * 7919) % 1000), [] {});
    }
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_ScheduleAndFire);

void BM_CancelHeavy(benchmark::State& state) {
  for (auto _ : state) {
    simcore::Simulator sim;
    std::vector<simcore::EventHandle> handles;
    handles.reserve(1024);
    for (int i = 0; i < 1024; ++i) {
      handles.push_back(sim.ScheduleAt(static_cast<double>(i), [] {}));
    }
    for (size_t i = 0; i < handles.size(); i += 2) {
      handles[i].Cancel();
    }
    benchmark::DoNotOptimize(sim.Run());
  }
  state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_CancelHeavy);

void BM_DecodeInstanceSteps(benchmark::State& state) {
  const model::LatencyModel lm(model::ModelSpec::Opt13B(), {1, 1},
                               cluster::GpuSpec::A100_80GB());
  for (auto _ : state) {
    simcore::Simulator sim;
    engine::DecodeInstance instance(&sim, lm, 1 << 20, {}, 0);
    std::vector<std::unique_ptr<engine::RequestState>> states;
    for (int i = 0; i < 64; ++i) {
      workload::Request req;
      req.id = i;
      req.input_len = 128;
      req.output_len = 32;
      states.push_back(std::make_unique<engine::RequestState>(req));
      instance.Submit(states.back().get());
    }
    sim.Run();
    benchmark::DoNotOptimize(instance.tokens_generated());
  }
  state.SetItemsProcessed(state.iterations() * 64 * 31);
}
BENCHMARK(BM_DecodeInstanceSteps);

}  // namespace
}  // namespace distserve

BENCHMARK_MAIN();
