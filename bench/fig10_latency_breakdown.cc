// Figure 10: latency breakdown and KV-transfer time CDF.
//
// Left: the five-stage lifecycle breakdown (prefill queuing, prefill execution, transmission,
// decoding queuing, decoding execution) for OPT-175B on ShareGPT-like traffic under the
// Algorithm-2 placement. Paper's shape: transmission accounts for <0.1% of total time.
// Right: the CDF of absolute KV-cache transfer times for OPT-13B/66B/175B; paper: >95% of
// transfers under 30 ms despite the 25 Gbps cross-node network, because segment colocation
// keeps transfers on NVLink.
//
// Both panels render from the span recorder (trace/attribution.h): the ad-hoc collector
// arithmetic this bench used to carry now lives behind ComputeLatencyBreakdown /
// TransferTimes, which fold the per-request span timelines into the same stage extents
// bit for bit (trace_bitidentity_test proves the equivalence). Building with
// -DDISTSERVE_TRACE=OFF falls back to the collector; stdout is byte-identical either way.
//
// Flags:
//   --trace=PATH        export the OPT-175B breakdown run as Chrome trace-event JSON
//   --attribution=PATH  write the richer per-stage attribution table for the same run
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "trace/attribution.h"

namespace distserve {
namespace {

struct AppResult {
  metrics::LatencyBreakdown breakdown;
  std::vector<double> transfer_times;  // sorted, completed requests only
};

AppResult RunApp(const bench::Application& app, double per_gpu_rate, int requests,
                 placement::PlacementPlan* plan_out, trace::Recorder* recorder) {
  const cluster::ClusterSpec cluster = cluster::ClusterSpec::PaperTestbed();
  const auto dataset = workload::MakeDatasetByName(app.dataset_name);
  placement::PlannerInputs inputs = bench::MakePlannerInputs(app, cluster, dataset.get(), 1.0);
  placement::PlacementPlan plan = placement::LowNodeAffinityPlacement(inputs).plan;
  plan.num_prefill = 1;
  plan.num_decode = 1;
  *plan_out = plan;
  workload::TraceSpec spec;
  spec.rate = per_gpu_rate * plan.total_gpus();
  spec.num_requests = requests;
  spec.seed = 101;
  const bench::RunFn run = bench::MakeDistServeRunner(app.model, cluster, plan, recorder);
  const metrics::Collector results = run(workload::GenerateTrace(spec, *dataset));
  AppResult out;
  if (trace::kCompiledIn) {
    out.breakdown = trace::ComputeLatencyBreakdown(*recorder);
    out.transfer_times = trace::TransferTimes(*recorder);
  } else {
    out.breakdown = results.ComputeBreakdown();
    out.transfer_times = results.SortedTransferTimes();
  }
  return out;
}

}  // namespace

int Main(int argc, char** argv) {
  std::string trace_path;
  std::string attribution_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_path = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--attribution=", 14) == 0) {
      attribution_path = argv[i] + 14;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace=PATH] [--attribution=PATH]\n"
                   "unknown flag: %s\n",
                   argv[0], argv[i]);
      return 2;
    }
  }
  if (!trace::kCompiledIn && (!trace_path.empty() || !attribution_path.empty())) {
    std::fprintf(stderr,
                 "warning: built with -DDISTSERVE_TRACE=OFF; no spans will be exported\n");
  }

  bench::PrintBanner("Figure 10a: latency breakdown, OPT-175B on ShareGPT (DistServe-Low)");
  placement::PlacementPlan plan_175;
  trace::Recorder recorder_175;
  const AppResult results_175 = RunApp(bench::ChatbotOpt175B(), /*per_gpu_rate=*/0.12,
                                       /*requests=*/800, &plan_175, &recorder_175);
  const metrics::LatencyBreakdown& breakdown = results_175.breakdown;
  std::printf("plan: %s\n", plan_175.ToString().c_str());
  std::printf("%s\n", breakdown.ToString().c_str());
  std::printf("transmission share of total latency: %.4f%%\n",
              100.0 * breakdown.transfer / breakdown.total());
  if (!trace_path.empty()) {
    recorder_175.WriteChromeJson(trace_path);
  }
  if (!attribution_path.empty()) {
    std::ofstream out(attribution_path);
    out << trace::AttributionTable(recorder_175);
  }

  bench::PrintBanner("Figure 10b: KV-cache transfer time CDF per model");
  std::printf("%-12s %10s %10s %10s %10s %14s\n", "model", "p50", "p90", "p95", "p99",
              "frac<=30ms");
  const bench::Application apps[] = {bench::ChatbotOpt13B(), bench::ChatbotOpt66B(),
                                     bench::ChatbotOpt175B()};
  const double rates[] = {2.0, 0.4, 0.12};
  for (int i = 0; i < 3; ++i) {
    placement::PlacementPlan plan;
    trace::Recorder recorder;
    const AppResult results = RunApp(apps[i], rates[i], 800, &plan, &recorder);
    PercentileTracker tracker;
    for (double t : results.transfer_times) {
      tracker.Add(t);
    }
    std::printf("%-12s %8.2fms %8.2fms %8.2fms %8.2fms %13.1f%%\n",
                apps[i].model.name.c_str(), 1e3 * tracker.Percentile(50),
                1e3 * tracker.Percentile(90), 1e3 * tracker.Percentile(95),
                1e3 * tracker.Percentile(99), 100.0 * tracker.FractionAtOrBelow(0.030));
  }
  return 0;
}

}  // namespace distserve

int main(int argc, char** argv) { return distserve::Main(argc, argv); }
