// Figure 10: latency breakdown and KV-transfer time CDF.
//
// Left: the five-stage lifecycle breakdown (prefill queuing, prefill execution, transmission,
// decoding queuing, decoding execution) for OPT-175B on ShareGPT-like traffic under the
// Algorithm-2 placement. Paper's shape: transmission accounts for <0.1% of total time.
// Right: the CDF of absolute KV-cache transfer times for OPT-13B/66B/175B; paper: >95% of
// transfers under 30 ms despite the 25 Gbps cross-node network, because segment colocation
// keeps transfers on NVLink.
#include <cstdio>

#include "bench/bench_common.h"

namespace distserve {
namespace {

metrics::Collector RunApp(const bench::Application& app, double per_gpu_rate, int requests,
                          placement::PlacementPlan* plan_out) {
  const cluster::ClusterSpec cluster = cluster::ClusterSpec::PaperTestbed();
  const auto dataset = workload::MakeDatasetByName(app.dataset_name);
  placement::PlannerInputs inputs = bench::MakePlannerInputs(app, cluster, dataset.get(), 1.0);
  placement::PlacementPlan plan = placement::LowNodeAffinityPlacement(inputs).plan;
  plan.num_prefill = 1;
  plan.num_decode = 1;
  *plan_out = plan;
  workload::TraceSpec spec;
  spec.rate = per_gpu_rate * plan.total_gpus();
  spec.num_requests = requests;
  spec.seed = 101;
  const bench::RunFn run = bench::MakeDistServeRunner(app.model, cluster, plan);
  return run(workload::GenerateTrace(spec, *dataset));
}

}  // namespace

int Main() {
  bench::PrintBanner("Figure 10a: latency breakdown, OPT-175B on ShareGPT (DistServe-Low)");
  placement::PlacementPlan plan_175;
  const metrics::Collector results_175 =
      RunApp(bench::ChatbotOpt175B(), /*per_gpu_rate=*/0.12, /*requests=*/800, &plan_175);
  const metrics::LatencyBreakdown breakdown = results_175.ComputeBreakdown();
  std::printf("plan: %s\n", plan_175.ToString().c_str());
  std::printf("%s\n", breakdown.ToString().c_str());
  std::printf("transmission share of total latency: %.4f%%\n",
              100.0 * breakdown.transfer / breakdown.total());

  bench::PrintBanner("Figure 10b: KV-cache transfer time CDF per model");
  std::printf("%-12s %10s %10s %10s %10s %14s\n", "model", "p50", "p90", "p95", "p99",
              "frac<=30ms");
  const bench::Application apps[] = {bench::ChatbotOpt13B(), bench::ChatbotOpt66B(),
                                     bench::ChatbotOpt175B()};
  const double rates[] = {2.0, 0.4, 0.12};
  for (int i = 0; i < 3; ++i) {
    placement::PlacementPlan plan;
    const metrics::Collector results = RunApp(apps[i], rates[i], 800, &plan);
    const std::vector<double> times = results.SortedTransferTimes();
    PercentileTracker tracker;
    for (double t : times) {
      tracker.Add(t);
    }
    std::printf("%-12s %8.2fms %8.2fms %8.2fms %8.2fms %13.1f%%\n",
                apps[i].model.name.c_str(), 1e3 * tracker.Percentile(50),
                1e3 * tracker.Percentile(90), 1e3 * tracker.Percentile(95),
                1e3 * tracker.Percentile(99), 100.0 * tracker.FractionAtOrBelow(0.030));
  }
  return 0;
}

}  // namespace distserve

int main() { return distserve::Main(); }
