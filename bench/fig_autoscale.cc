// fig_autoscale (extension beyond the paper's exhibits; DESIGN.md §18): load-driven
// autoscaling over a simulated day of diurnal traffic, versus static provisioning.
//
// A RateSchedule shapes a full day — overnight trough, morning ramp, broad afternoon peak,
// evening decline — plus a flash crowd (a multiplicative spike) landing mid-plateau. One
// scheduled trace is generated for the whole day and sliced into control windows; both
// contenders serve the *same* slices:
//
//   static:     one placement sized for the predictable diurnal peak, held all day. The
//               flash crowd is exactly the event static provisioning cannot foresee.
//   autoscaled: starts sized for the overnight trough; after each window a
//               serving::Autoscaler consumes the window's attainment/rate and may trigger
//               DistServe::Replan (warm goodput-cache start), with the new plan taking
//               effect the next window. Every plan change is charged its migration cost —
//               the KV drain over the cross-node fabric with both fleets held during the
//               drain — against the GPU-hour denominator, so scaling is never free.
//
// Windows are served episodically (each on a fresh engine bound to the window's plan): the
// approximation drops cross-window backlog carryover, identically for both contenders.
// The scoreboard is goodput-per-GPU-hour: SLO-attained requests divided by GPU-hours
// consumed (including migration double-occupancy). The exit code asserts the autoscaler
// beats static on that metric while holding overall SLO attainment at least as high, and
// that the controller actually both scaled up and down during the day.
//
// Flags: --smoke (a compressed day for CI), --json=PATH (machine-readable artifact),
// --goodput-cache=PATH (env DISTSERVE_GOODPUT_CACHE fallback: persist planner goodputs
// across runs; cached values are exact, so warm stdout is byte-identical to cold — cache
// accounting goes to the JSON only), --shards=N (env DISTSERVE_SHARDS: planner search
// threads; plans are bit-identical at any N — DESIGN.md §10 — so stdout is too; the CI
// determinism job diffs --shards=1 vs 4). --smoke additionally self-checks that identity
// in-process by re-running the autoscaled day at a different planner thread count and
// comparing every row, decision, and total.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/distserve.h"
#include "serving/autoscaler.h"
#include "workload/arrival.h"

namespace distserve::bench {
namespace {

struct DayParams {
  double day = 86400.0;       // simulated-day length, seconds
  double window = 1800.0;     // control-window length, seconds
  double trough = 3.0;        // overnight rate, req/s (one minimum plan, lightly loaded)
  double peak = 24.0;         // diurnal peak rate, req/s (static provisions for this; must
                              // exceed one replica's capacity or static is trivially optimal)
  double spike_mult = 1.6;    // flash crowd multiplier, landing mid-plateau
  double spike_windows = 2.0; // flash crowd duration in windows
  double cv = 1.0;            // arrival burstiness (1 = non-homogeneous Poisson)
  uint64_t seed = 77;
  int planner_requests = 300; // planner simulation fidelity
  int bisection_iters = 7;

  double spike_start() const { return 0.55 * day; }
  double spike_duration() const { return spike_windows * window; }
  int num_windows() const { return static_cast<int>(day / window); }
};

struct WindowMetrics {
  int offered = 0;
  double observed_rate = 0.0;
  double attainment = 1.0;     // joint-SLO fraction
  double goodput = 0.0;        // attained req/s within the window
  double mean_latency = 0.0;
  double mean_input_len = 0.0;
  double mean_output_len = 0.0;
};

struct DayTotals {
  double attained = 0.0;  // SLO-attained requests (fractional accumulation)
  int offered = 0;
  double gpu_hours = 0.0;            // serving occupancy
  double migration_gpu_hours = 0.0;  // drain double-occupancy, autoscaled only
  int replans = 0;

  double attainment() const { return offered > 0 ? attained / offered : 1.0; }
  double total_gpu_hours() const { return gpu_hours + migration_gpu_hours; }
  double goodput_per_gpu_hour() const {
    return total_gpu_hours() > 0.0 ? attained / total_gpu_hours() : 0.0;
  }
};

// One window of one contender: per-window rows are printed side by side afterwards.
struct WindowRow {
  WindowMetrics metrics;
  int gpus = 0;
  std::string action;  // autoscaled only: "hold" / decision + replan detail
};

struct DayRun {
  DayTotals totals;
  std::vector<WindowRow> rows;
  std::string initial_plan;
  int initial_gpus = 0;
  double initial_capacity = 0.0;
  std::string plan_sequence;  // "plan0 | plan1 | ..." — the shard-identity fingerprint
  serving::Autoscaler::Stats controller;
  int effective_ups = 0;    // replans that actually grew the fleet
  int effective_downs = 0;  // replans that actually shrank it
  PlannerAccounting planner;  // JSON only — never printed to stdout
  double migration_drain_seconds = 0.0;
};

// Serves one window slice on a fresh engine bound to `plan` and summarizes it.
WindowMetrics RunWindow(const Application& app, const cluster::ClusterSpec& cluster,
                        const placement::PlacementPlan& plan, const workload::Trace& slice,
                        double window_len) {
  WindowMetrics m;
  m.offered = static_cast<int>(slice.size());
  m.observed_rate = static_cast<double>(slice.size()) / window_len;
  if (slice.empty()) {
    return m;
  }
  const metrics::Collector results = MakeDistServeRunner(app.model, cluster, plan)(slice);
  m.attainment = results.ComputeAttainment(app.slo).both;
  m.goodput = m.attainment * m.observed_rate;
  double latency_sum = 0.0;
  for (const metrics::RequestRecord& r : results.records()) {
    latency_sum += r.TotalLatency();
  }
  if (!results.records().empty()) {
    m.mean_latency = latency_sum / static_cast<double>(results.records().size());
  }
  double in_sum = 0.0;
  double out_sum = 0.0;
  for (const workload::Request& r : slice) {
    in_sum += r.input_len;
    out_sum += r.output_len;
  }
  m.mean_input_len = in_sum / static_cast<double>(slice.size());
  m.mean_output_len = out_sum / static_cast<double>(slice.size());
  return m;
}

DistServeOptions FacadeOptions(const Application& app, const cluster::ClusterSpec& cluster,
                               const workload::Dataset* dataset, double traffic_rate,
                               const DayParams& params, int planner_threads,
                               const std::string& cache_path) {
  DistServeOptions options;
  options.model = app.model;
  options.cluster = cluster;
  options.slo = app.slo;
  options.dataset = dataset;
  options.traffic_rate = traffic_rate;
  options.planner_threads = planner_threads;
  options.goodput_cache_path = cache_path;
  options.search.num_requests = params.planner_requests;
  options.search.min_trace_duration = 40.0;
  options.search.max_requests = 4000;
  options.search.bisection_iters = params.bisection_iters;
  return options;
}

// The static contender: one peak-sized plan held for every window.
DayRun RunStaticDay(const Application& app, const cluster::ClusterSpec& cluster,
                    const workload::Dataset* dataset,
                    const std::vector<workload::Trace>& slices, const DayParams& params,
                    int planner_threads, const std::string& cache_path) {
  DayRun run;
  DistServe server(
      FacadeOptions(app, cluster, dataset, params.peak, params, planner_threads, cache_path));
  const placement::PlacementPlan plan = server.Plan();
  run.planner.Add(server.PlannerDetails());
  run.initial_plan = plan.ToString();
  run.initial_gpus = plan.total_gpus();
  run.initial_capacity = plan.system_goodput();
  run.plan_sequence = run.initial_plan;
  for (const workload::Trace& slice : slices) {
    WindowRow row;
    row.metrics = RunWindow(app, cluster, plan, slice, params.window);
    row.gpus = plan.total_gpus();
    run.rows.push_back(row);
    run.totals.offered += row.metrics.offered;
    run.totals.attained += row.metrics.attainment * row.metrics.offered;
    run.totals.gpu_hours += plan.total_gpus() * params.window / 3600.0;
  }
  return run;
}

// The autoscaled contender: controller consumes each window, replans take effect the next.
DayRun RunAutoscaledDay(const Application& app, const cluster::ClusterSpec& cluster,
                        const workload::Dataset* dataset,
                        const std::vector<workload::Trace>& slices, const DayParams& params,
                        int planner_threads, const std::string& cache_path) {
  DayRun run;
  serving::Autoscaler::Options controller_options;
  controller_options.cooldown = params.window;  // at most one action per window
  const double initial_rate =
      std::max(controller_options.min_plan_rate,
               params.trough * controller_options.rate_headroom);
  DistServe server(
      FacadeOptions(app, cluster, dataset, initial_rate, params, planner_threads, cache_path));
  placement::PlacementPlan plan = server.Plan();
  run.planner.Add(server.PlannerDetails());
  run.initial_plan = plan.ToString();
  run.initial_gpus = plan.total_gpus();
  run.initial_capacity = plan.system_goodput();
  run.plan_sequence = run.initial_plan;

  serving::Autoscaler controller(controller_options, plan.system_goodput(), 0.0);
  for (size_t w = 0; w < slices.size(); ++w) {
    const double t0 = static_cast<double>(w) * params.window;
    const double t1 = t0 + params.window;
    WindowRow row;
    row.metrics = RunWindow(app, cluster, plan, slices[w], params.window);
    row.gpus = plan.total_gpus();
    run.totals.offered += row.metrics.offered;
    run.totals.attained += row.metrics.attainment * row.metrics.offered;
    run.totals.gpu_hours += plan.total_gpus() * params.window / 3600.0;

    serving::WindowSample sample;
    sample.start = t0;
    sample.end = t1;
    sample.requests = row.metrics.offered;
    sample.observed_rate = row.metrics.observed_rate;
    sample.attainment = row.metrics.attainment;
    sample.goodput = row.metrics.goodput;
    sample.mean_latency = row.metrics.mean_latency;
    const serving::AutoscaleDecision decision = controller.Observe(sample);
    if (decision.action == serving::AutoscaleAction::kHold) {
      row.action = "hold";
    } else {
      const placement::PlacementPlan old_plan = plan;
      plan = server.Replan(dataset, decision.plan_rate);
      run.planner.Add(server.PlannerDetails());
      ++run.totals.replans;
      const double resident_tokens = serving::EstimateResidentKvTokens(
          row.metrics.observed_rate, row.metrics.mean_latency, row.metrics.mean_input_len,
          row.metrics.mean_output_len);
      const serving::MigrationCost cost =
          serving::EstimateMigrationCost(old_plan, plan, app.model, cluster, resident_tokens);
      run.totals.migration_gpu_hours += cost.gpu_seconds / 3600.0;
      run.migration_drain_seconds += cost.drain_seconds;
      controller.InstallPlan(plan.system_goodput(), t1);
      run.plan_sequence += " | " + plan.ToString();
      const char* verb = decision.action == serving::AutoscaleAction::kScaleUp ? "scale-up"
                                                                               : "scale-down";
      char detail[256];
      if (plan.total_gpus() == old_plan.total_gpus()) {
        // The replan resolved to the same footprint (e.g. already at the minimum plan):
        // the decision stands in the controller stats, but nothing moved.
        std::snprintf(detail, sizeof detail, "%s (%s) -> no-op @ %.2f rps (plan unchanged)",
                      verb, decision.reason.c_str(), decision.plan_rate);
      } else {
        (plan.total_gpus() > old_plan.total_gpus() ? run.effective_ups
                                                   : run.effective_downs) += 1;
        std::snprintf(detail, sizeof detail,
                      "%s (%s) -> replan @ %.2f rps: %s (%d GPUs, drain %.2fs)", verb,
                      decision.reason.c_str(), decision.plan_rate, plan.ToString().c_str(),
                      plan.total_gpus(), cost.drain_seconds);
      }
      row.action = detail;
    }
    run.rows.push_back(row);
  }
  run.controller = controller.stats();
  return run;
}

// The shard-identity fingerprint: every printed number and decision of a day run, rendered
// exactly as the table renders it.
std::string Fingerprint(const DayRun& run) {
  std::string fp = run.plan_sequence;
  char buf[160];
  for (const WindowRow& row : run.rows) {
    std::snprintf(buf, sizeof buf, "|%d,%d,%.4f,%.4f,%s", row.metrics.offered, row.gpus,
                  row.metrics.attainment, row.metrics.goodput, row.action.c_str());
    fp += buf;
  }
  std::snprintf(buf, sizeof buf, "|%.6f,%.6f,%.6f", run.totals.attained,
                run.totals.gpu_hours, run.totals.migration_gpu_hours);
  fp += buf;
  return fp;
}

int Main(int argc, char** argv) {
  const WallTimer timer;
  CommonFlags flags;
  if (!ParseCommonFlags(argc, argv, kFlagSmoke | kFlagJson | kFlagGoodputCache | kFlagShards,
                        &flags)) {
    return 2;
  }
  DayParams params;
  if (flags.smoke) {
    params.day = 2400.0;
    params.window = 200.0;
    params.planner_requests = 150;
    params.bisection_iters = 5;
  }
  const Application app = ChatbotOpt13B();
  const cluster::ClusterSpec cluster = cluster::ClusterSpec::PaperTestbed();
  const auto dataset = workload::MakeDatasetByName(app.dataset_name);
  const std::string cache_path = placement::GoodputCacheStore::ResolvePath(flags.goodput_cache);

  workload::RateSchedule schedule =
      workload::RateSchedule::Diurnal(params.trough, params.peak, params.day);
  schedule.AddSpike({params.spike_start(), params.spike_duration(), params.spike_mult});

  workload::ScheduledTraceSpec trace_spec;
  trace_spec.schedule = &schedule;
  trace_spec.burstiness_cv = params.cv;
  trace_spec.horizon = params.day;
  trace_spec.seed = params.seed;
  const workload::Trace day_trace = workload::GenerateScheduledTrace(trace_spec, *dataset);

  // Slice once; both contenders serve the same windows.
  const int num_windows = params.num_windows();
  std::vector<workload::Trace> slices(static_cast<size_t>(num_windows));
  for (const workload::Request& r : day_trace) {
    const int w = std::min(num_windows - 1, static_cast<int>(r.arrival_time / params.window));
    workload::Trace& slice = slices[static_cast<size_t>(w)];
    workload::Request q = r;
    q.arrival_time -= static_cast<double>(w) * params.window;
    q.id = static_cast<workload::RequestId>(slice.size());
    slice.push_back(q);
  }

  std::printf("fig_autoscale: goodput-per-GPU-hour, autoscaled vs static (%s)\n",
              app.name.c_str());
  std::printf(
      "# day %.0fs, %d windows of %.0fs | diurnal %.1f->%.1f rps, flash crowd x%.1f @ "
      "[%.0f, %.0f)s\n",
      params.day, num_windows, params.window, params.trough, params.peak, params.spike_mult,
      params.spike_start(), params.spike_start() + params.spike_duration());
  std::printf("# trace: %d requests (mean %.2f rps, peak %.2f rps), cv %.1f, seed %llu\n",
              static_cast<int>(day_trace.size()), schedule.MeanRate(params.day),
              schedule.max_rate(), params.cv,
              static_cast<unsigned long long>(params.seed));

  DayRun statics = RunStaticDay(app, cluster, dataset.get(), slices, params, flags.shards,
                                cache_path);
  std::printf("# static plan (sized for diurnal peak %.1f rps): %s (%d GPUs, capacity %.2f "
              "rps)\n",
              params.peak, statics.initial_plan.c_str(), statics.initial_gpus,
              statics.initial_capacity);

  DayRun autos = RunAutoscaledDay(app, cluster, dataset.get(), slices, params, flags.shards,
                                  cache_path);
  std::printf("# autoscaled initial plan (sized for trough): %s (%d GPUs, capacity %.2f "
              "rps)\n\n",
              autos.initial_plan.c_str(), autos.initial_gpus, autos.initial_capacity);

  std::printf("%-4s %-13s %7s %6s | %4s %7s %8s | %4s %7s %8s  %s\n", "win", "t(h)", "offer",
              "rate", "gpus", "attain", "goodput", "gpus", "attain", "goodput", "action");
  for (int w = 0; w < num_windows; ++w) {
    const WindowRow& a = autos.rows[static_cast<size_t>(w)];
    const WindowRow& s = statics.rows[static_cast<size_t>(w)];
    char span[32];
    std::snprintf(span, sizeof span, "[%5.2f,%5.2f)", w * params.window / 3600.0,
                  (w + 1) * params.window / 3600.0);
    std::printf("w%02d  %-13s %7d %6.2f | %4d %6.1f%% %8.3f | %4d %6.1f%% %8.3f  %s\n", w,
                span, a.metrics.offered, a.metrics.observed_rate, a.gpus,
                100.0 * a.metrics.attainment, a.metrics.goodput, s.gpus,
                100.0 * s.metrics.attainment, s.metrics.goodput, a.action.c_str());
  }

  std::printf("\ntotals (%d requests offered to each):\n", autos.totals.offered);
  std::printf(
      "  autoscaled: attained %.0f (%.2f%%), %.2f GPU-h (+%.3f migration over %.1fs drain), "
      "%.1f att-req/GPU-h, %d replans (%d up, %d down)\n",
      autos.totals.attained, 100.0 * autos.totals.attainment(), autos.totals.gpu_hours,
      autos.totals.migration_gpu_hours, autos.migration_drain_seconds,
      autos.totals.goodput_per_gpu_hour(), autos.totals.replans, autos.effective_ups,
      autos.effective_downs);
  std::printf("  static:     attained %.0f (%.2f%%), %.2f GPU-h, %.1f att-req/GPU-h\n",
              statics.totals.attained, 100.0 * statics.totals.attainment(),
              statics.totals.gpu_hours, statics.totals.goodput_per_gpu_hour());

  const double ratio = statics.totals.goodput_per_gpu_hour() > 0.0
                           ? autos.totals.goodput_per_gpu_hour() /
                                 statics.totals.goodput_per_gpu_hour()
                           : 0.0;
  const bool wins_gpu_hours =
      autos.totals.goodput_per_gpu_hour() > statics.totals.goodput_per_gpu_hour();
  const bool holds_attainment = autos.totals.attainment() >= statics.totals.attainment();
  const bool controller_active = autos.effective_ups >= 1 && autos.effective_downs >= 1;
  std::printf("GOODPUT/GPU-HOUR: %s (%.2fx static)\n", wins_gpu_hours ? "PASS" : "FAIL",
              ratio);
  std::printf("ATTAINMENT HELD: %s (%.2f%% vs static %.2f%%)\n",
              holds_attainment ? "PASS" : "FAIL", 100.0 * autos.totals.attainment(),
              100.0 * statics.totals.attainment());
  std::printf("CONTROLLER ACTIVE: %s (%d effective scale-ups, %d effective scale-downs)\n",
              controller_active ? "PASS" : "FAIL", autos.effective_ups,
              autos.effective_downs);

  // Smoke self-check: the whole autoscaled day — every plan, row, and decision — must be
  // bit-identical at a different planner thread count (DESIGN.md §10 extended to the
  // control loop). The CI determinism job enforces the same property on full stdout.
  bool shard_identity = true;
  if (flags.smoke) {
    const int other_threads = flags.shards == 1 ? 2 : 1;
    const DayRun rerun = RunAutoscaledDay(app, cluster, dataset.get(), slices, params,
                                          other_threads, cache_path);
    shard_identity = Fingerprint(rerun) == Fingerprint(autos);
    // No thread counts in the line: stdout must stay byte-identical across --shards values.
    std::printf("SHARD-IDENTITY: %s (autoscaled day re-run at another planner thread count)\n",
                shard_identity ? "PASS" : "FAIL");
  }

  if (!flags.json_path.empty()) {
    BenchJson json("fig_autoscale");
    json.AddBool("smoke", flags.smoke);
    json.AddInt("windows", num_windows);
    json.AddInt("offered", autos.totals.offered);
    json.AddDouble("auto_attainment", autos.totals.attainment());
    json.AddDouble("auto_gpu_hours", autos.totals.total_gpu_hours());
    json.AddDouble("auto_migration_gpu_hours", autos.totals.migration_gpu_hours);
    json.AddDouble("auto_goodput_per_gpu_hour", autos.totals.goodput_per_gpu_hour());
    json.AddInt("auto_replans", autos.totals.replans);
    json.AddInt("scale_ups", autos.controller.scale_ups);
    json.AddInt("scale_downs", autos.controller.scale_downs);
    json.AddInt("effective_ups", autos.effective_ups);
    json.AddInt("effective_downs", autos.effective_downs);
    json.AddInt("cooldown_suppressed", autos.controller.cooldown_suppressed);
    json.AddDouble("static_attainment", statics.totals.attainment());
    json.AddDouble("static_gpu_hours", statics.totals.total_gpu_hours());
    json.AddDouble("static_goodput_per_gpu_hour", statics.totals.goodput_per_gpu_hour());
    json.AddDouble("ratio", ratio);
    json.AddBool("wins_gpu_hours", wins_gpu_hours);
    json.AddBool("holds_attainment", holds_attainment);
    json.AddBool("shard_identity", shard_identity);
    // Planner/cache accounting is JSON-only: stdout must stay byte-identical cold vs warm.
    autos.planner.AddJsonFields(json);
    json.AddInt("static_planner_simulations", statics.planner.simulations_run);
    json.AddWallMs(timer);
    if (!json.WriteTo(flags.json_path)) {
      std::fprintf(stderr, "failed to write %s\n", flags.json_path.c_str());
      return 2;
    }
  }

  return (wins_gpu_hours && holds_attainment && controller_active && shard_identity) ? 0 : 1;
}

}  // namespace
}  // namespace distserve::bench

int main(int argc, char** argv) { return distserve::bench::Main(argc, argv); }
