// Figure 12: placement-algorithm running time as the per-instance GPU budget (N x M) grows.
//
// google-benchmark over HighNodeAffinityPlacement (Alg. 1) and LowNodeAffinityPlacement
// (Alg. 2), for OPT-13B and OPT-66B, at node limits 1-4 (8-32 GPUs per instance). The paper's
// shape: running time grows with the GPU budget, is independent of model size (the simulator
// is discrete-event), and Alg. 2's intra-node enumeration eventually costs more than Alg. 1.
#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace distserve {
namespace {

placement::PlannerInputs Inputs(const model::ModelSpec& model, int max_nodes) {
  static const auto dataset = workload::MakeShareGptLike();
  bench::Application app = bench::ChatbotOpt13B();
  app.model = model;
  placement::PlannerInputs inputs =
      bench::MakePlannerInputs(app, cluster::ClusterSpec::PaperTestbed(), dataset.get(), 1.0);
  inputs.max_nodes_per_instance = max_nodes;
  // Fidelity reduced for timing runs (the paper times the algorithm, not the workload).
  inputs.search.num_requests = 100;
  inputs.search.min_trace_duration = 10.0;
  inputs.search.max_requests = 600;
  inputs.search.bisection_iters = 4;
  return inputs;
}

void BM_HighAffinity13B(benchmark::State& state) {
  const placement::PlannerInputs inputs = Inputs(model::ModelSpec::Opt13B(),
                                                 static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::HighNodeAffinityPlacement(inputs));
  }
  state.SetLabel("gpus=" + std::to_string(8 * state.range(0)));
}

void BM_LowAffinity13B(benchmark::State& state) {
  const placement::PlannerInputs inputs = Inputs(model::ModelSpec::Opt13B(),
                                                 static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::LowNodeAffinityPlacement(inputs));
  }
  state.SetLabel("gpus=" + std::to_string(8 * state.range(0)));
}

void BM_HighAffinity66B(benchmark::State& state) {
  const placement::PlannerInputs inputs = Inputs(model::ModelSpec::Opt66B(),
                                                 static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::HighNodeAffinityPlacement(inputs));
  }
  state.SetLabel("gpus=" + std::to_string(8 * state.range(0)));
}

void BM_LowAffinity66B(benchmark::State& state) {
  const placement::PlannerInputs inputs = Inputs(model::ModelSpec::Opt66B(),
                                                 static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::LowNodeAffinityPlacement(inputs));
  }
  state.SetLabel("gpus=" + std::to_string(8 * state.range(0)));
}

BENCHMARK(BM_HighAffinity13B)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LowAffinity13B)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HighAffinity66B)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LowAffinity66B)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace distserve

BENCHMARK_MAIN();
