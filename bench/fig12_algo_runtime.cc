// Figure 12: placement-algorithm running time as the per-instance GPU budget (N x M) grows.
//
// google-benchmark over HighNodeAffinityPlacement (Alg. 1) and LowNodeAffinityPlacement
// (Alg. 2), for OPT-13B and OPT-66B, at node limits 1-4 (8-32 GPUs per instance). The paper's
// shape: running time grows with the GPU budget, is independent of model size (the simulator
// is discrete-event), and Alg. 2's intra-node enumeration eventually costs more than Alg. 1.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>

#include "bench/bench_common.h"

// Set by main() when --goodput-cache=PATH (or DISTSERVE_GOODPUT_CACHE) is present: the
// CachedReplan benchmark then warm-starts from — and saves back to — the persistent store, so
// a repeated bench invocation measures the true cross-process re-search floor.
static distserve::placement::GoodputCache* g_persistent_goodput_cache = nullptr;

namespace distserve {
namespace {

placement::PlannerInputs Inputs(const model::ModelSpec& model, int max_nodes) {
  static const auto dataset = workload::MakeShareGptLike();
  bench::Application app = bench::ChatbotOpt13B();
  app.model = model;
  placement::PlannerInputs inputs =
      bench::MakePlannerInputs(app, cluster::ClusterSpec::PaperTestbed(), dataset.get(), 1.0);
  inputs.max_nodes_per_instance = max_nodes;
  // Fidelity reduced for timing runs (the paper times the algorithm, not the workload).
  inputs.search.num_requests = 100;
  inputs.search.min_trace_duration = 10.0;
  inputs.search.max_requests = 600;
  inputs.search.bisection_iters = 4;
  return inputs;
}

void BM_HighAffinity13B(benchmark::State& state) {
  const placement::PlannerInputs inputs = Inputs(model::ModelSpec::Opt13B(),
                                                 static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::HighNodeAffinityPlacement(inputs));
  }
  state.SetLabel("gpus=" + std::to_string(8 * state.range(0)));
}

void BM_LowAffinity13B(benchmark::State& state) {
  const placement::PlannerInputs inputs = Inputs(model::ModelSpec::Opt13B(),
                                                 static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::LowNodeAffinityPlacement(inputs));
  }
  state.SetLabel("gpus=" + std::to_string(8 * state.range(0)));
}

void BM_HighAffinity66B(benchmark::State& state) {
  const placement::PlannerInputs inputs = Inputs(model::ModelSpec::Opt66B(),
                                                 static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::HighNodeAffinityPlacement(inputs));
  }
  state.SetLabel("gpus=" + std::to_string(8 * state.range(0)));
}

void BM_LowAffinity66B(benchmark::State& state) {
  const placement::PlannerInputs inputs = Inputs(model::ModelSpec::Opt66B(),
                                                 static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::LowNodeAffinityPlacement(inputs));
  }
  state.SetLabel("gpus=" + std::to_string(8 * state.range(0)));
}

BENCHMARK(BM_HighAffinity13B)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LowAffinity13B)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HighAffinity66B)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LowAffinity66B)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);

// --- Search-engine ablations (this reproduction's extension; same plans, different cost) ---

// The pre-engine search: every probe trace regenerated, every feasible config simulated.
// The gap between this and BM_*Affinity13B above is the single-thread engine speedup
// (trace sharing + upper-bound pruning).
void BM_HighAffinity13BEngineOff(benchmark::State& state) {
  placement::PlannerInputs inputs = Inputs(model::ModelSpec::Opt13B(),
                                           static_cast<int>(state.range(0)));
  inputs.share_probe_traces = false;
  inputs.prune_search_space = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::HighNodeAffinityPlacement(inputs));
  }
  state.SetLabel("gpus=" + std::to_string(8 * state.range(0)));
}

void BM_LowAffinity13BEngineOff(benchmark::State& state) {
  placement::PlannerInputs inputs = Inputs(model::ModelSpec::Opt13B(),
                                           static_cast<int>(state.range(0)));
  inputs.share_probe_traces = false;
  inputs.prune_search_space = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::LowNodeAffinityPlacement(inputs));
  }
  state.SetLabel("gpus=" + std::to_string(8 * state.range(0)));
}

// Tiered-fidelity ablation (DESIGN.md §15): the same searches with the tier-1 analytic
// pre-filter disabled — every roofline-surviving candidate is fully simulated and every rate
// search walks the whole probe lattice instead of short-circuiting at the analytic cap. Plans
// are bit-identical to the tier-on runs above (enforced by tiered_search_test); the gap to
// BM_*Affinity* is the tier's wall-clock win, recorded in BENCH_simcore.json.
void BM_HighAffinity13BTierOff(benchmark::State& state) {
  placement::PlannerInputs inputs = Inputs(model::ModelSpec::Opt13B(),
                                           static_cast<int>(state.range(0)));
  inputs.use_analytic_tier = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::HighNodeAffinityPlacement(inputs));
  }
  state.SetLabel("gpus=" + std::to_string(8 * state.range(0)));
}

void BM_LowAffinity13BTierOff(benchmark::State& state) {
  placement::PlannerInputs inputs = Inputs(model::ModelSpec::Opt13B(),
                                           static_cast<int>(state.range(0)));
  inputs.use_analytic_tier = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::LowNodeAffinityPlacement(inputs));
  }
  state.SetLabel("gpus=" + std::to_string(8 * state.range(0)));
}

void BM_LowAffinity66BTierOff(benchmark::State& state) {
  placement::PlannerInputs inputs = Inputs(model::ModelSpec::Opt66B(),
                                           static_cast<int>(state.range(0)));
  inputs.use_analytic_tier = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::LowNodeAffinityPlacement(inputs));
  }
  state.SetLabel("gpus=" + std::to_string(8 * state.range(0)));
}

// Thread scaling at the largest GPU budget (arg = thread count). Plans are bit-identical to
// the serial run at every point; only the wall clock moves (on multi-core hosts).
void BM_HighAffinity13BThreads(benchmark::State& state) {
  placement::PlannerInputs inputs = Inputs(model::ModelSpec::Opt13B(), /*max_nodes=*/4);
  inputs.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::HighNodeAffinityPlacement(inputs));
  }
  state.SetLabel("threads=" + std::to_string(state.range(0)));
}

void BM_LowAffinity13BThreads(benchmark::State& state) {
  placement::PlannerInputs inputs = Inputs(model::ModelSpec::Opt13B(), /*max_nodes=*/4);
  inputs.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::LowNodeAffinityPlacement(inputs));
  }
  state.SetLabel("threads=" + std::to_string(state.range(0)));
}

// Replanning with a persistent goodput cache and unchanged inputs: after the first (cold)
// iteration every simulation is a cache hit, so this measures the §4.3 re-search floor. With
// --goodput-cache the cache is the process-spanning store, so even the "cold fill" run may be
// answered from a previous invocation's file; plans are bit-identical either way.
void BM_HighAffinity13BCachedReplan(benchmark::State& state) {
  placement::PlannerInputs inputs = Inputs(model::ModelSpec::Opt13B(), /*max_nodes=*/4);
  placement::GoodputCache local_cache;
  workload::TraceCache traces;
  inputs.goodput_cache =
      g_persistent_goodput_cache != nullptr ? g_persistent_goodput_cache : &local_cache;
  inputs.search.trace_cache = &traces;
  benchmark::DoNotOptimize(placement::HighNodeAffinityPlacement(inputs));  // cold fill
  for (auto _ : state) {
    benchmark::DoNotOptimize(placement::HighNodeAffinityPlacement(inputs));
  }
  state.SetLabel("gpus=32,warm");
}

BENCHMARK(BM_HighAffinity13BEngineOff)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LowAffinity13BEngineOff)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HighAffinity13BTierOff)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LowAffinity13BTierOff)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LowAffinity66BTierOff)->DenseRange(1, 4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HighAffinity13BThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK(BM_LowAffinity13BThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();
BENCHMARK(BM_HighAffinity13BCachedReplan)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace distserve

// BENCHMARK_MAIN() expanded so --goodput-cache=PATH can be stripped before google-benchmark
// sees (and rejects) it.
int main(int argc, char** argv) {
  std::string cache_flag;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--goodput-cache=", 16) == 0) {
      cache_flag = argv[i] + 16;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  distserve::bench::PersistentGoodputCache persist(
      distserve::placement::GoodputCacheStore::ResolvePath(cache_flag),
      distserve::cluster::ClusterSpec::PaperTestbed().gpu);
  g_persistent_goodput_cache = persist.cache();

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;  // persist's destructor saves the cache file
}
