// fig_fleet (extension beyond the paper's exhibits): fleet-scale serving on the sharded
// discrete-event core (DESIGN.md §17).
//
// Simulates a router fronting many independent serving groups — the full build is 16 groups
// of 2 prefill + 2 decode OPT-13B instances (64 engine instances) fed by a 16-source merged
// arrival trace of one million requests — on simcore::ShardedSimulator with conservative
// lookahead. The point of the exhibit is twofold: the fleet completes at this scale in one
// process, and the result is bit-identical at every shard count, so the exhibit doubles as
// the end-to-end determinism fixture for the sharded core.
//
// Flags: --smoke (4 groups, small trace, plus an in-process bit-identity self-check of
// shards=1 vs shards=4 — the configuration CI runs), --json=PATH (machine-readable artifact),
// --shards=N (env DISTSERVE_SHARDS; default 1). Stdout is byte-identical at any --shards
// value — the determinism job diffs exactly this — so everything shard-dependent (per-shard
// event counts, sync rounds, message/spill totals) goes only into the JSON artifact.
//
// No thread pool is wired here: the CI container has one core, so shard advancement is
// serial and the exhibit measures the sharded core's bookkeeping cost, not parallel speedup.
// Multicore users can set FleetConfig::pool; the per-window work gate in
// ShardedSimulator::Run keeps barriers off the single-active-shard windows either way.
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "serving/fleet.h"

namespace distserve::bench {
namespace {

serving::FleetConfig MakeFleetConfig(const Application& app, int num_groups, int shards) {
  serving::FleetConfig fc;
  fc.num_groups = num_groups;
  fc.shards = shards;
  fc.group_config.model = app.model;
  fc.group_config.cluster = cluster::ClusterSpec::PaperTestbed();
  fc.group_config.plan.prefill_par = {1, 1};
  fc.group_config.plan.decode_par = {1, 1};
  fc.group_config.plan.num_prefill = 2;
  fc.group_config.plan.num_decode = 2;
  fc.group_config.plan.intra_node_transfers = true;
  return fc;
}

int Main(int argc, char** argv) {
  const WallTimer timer;
  CommonFlags flags;
  if (!ParseCommonFlags(argc, argv, kFlagSmoke | kFlagJson | kFlagShards, &flags)) {
    return 2;
  }

  const Application app = ChatbotOpt13B();
  const auto dataset = workload::MakeDatasetByName(app.dataset_name);
  const int num_groups = flags.smoke ? 4 : 16;
  const int instances_per_group = 4;  // 2P + 2D

  // One arrival source per group's worth of capacity, merged into a single router stream.
  // ~8 req/s per source keeps each 2P+2D group just under its fig13 operating point, so the
  // fleet is busy but not divergently overloaded.
  workload::FleetTraceSpec spec;
  spec.rate_per_source = 8.0;
  spec.num_sources = num_groups;
  spec.requests_per_source = flags.smoke ? 250 : 62500;
  spec.seed = 101;
  const workload::Trace trace = workload::GenerateFleetTrace(spec, *dataset);

  std::printf("fig_fleet: %d groups x (2P+2D) = %d instances, %zu requests, %.1f req/s "
              "offered (chatbot-13b)\n",
              num_groups, num_groups * instances_per_group, trace.size(),
              spec.rate_per_source * spec.num_sources);

  serving::FleetSystem fleet(MakeFleetConfig(app, num_groups, flags.shards));
  serving::FleetResult result = fleet.Run(trace);

  const metrics::Attainment att = result.collector.ComputeAttainment(app.slo);
  const double goodput = result.collector.GoodputUnderSlo(app.slo);
  std::printf("completed %zu  lost %zu  attainment both %.2f%% (ttft %.2f%%, tpot %.2f%%)  "
              "goodput %.3f req/s\n",
              result.collector.count(), result.collector.lost_count(), 100.0 * att.both,
              100.0 * att.ttft_only, 100.0 * att.tpot_only, goodput);
  int64_t min_completed = result.group_completed.empty() ? 0 : result.group_completed.front();
  int64_t max_completed = min_completed;
  for (int64_t c : result.group_completed) {
    min_completed = std::min(min_completed, c);
    max_completed = std::max(max_completed, c);
  }
  std::printf("events %lld  group load min/max %lld/%lld\n",
              static_cast<long long>(result.events), static_cast<long long>(min_completed),
              static_cast<long long>(max_completed));
  const bool served_all =
      result.collector.count() + result.collector.lost_count() == trace.size();
  std::printf("SERVED-ALL: %s\n", served_all ? "PASS" : "FAIL");

  // Smoke self-check: the whole fleet, re-run sequentially and at 4 shards, must agree
  // bit-for-bit regardless of what --shards the measured run above used.
  bool identical = true;
  if (flags.smoke) {
    serving::FleetSystem seq(MakeFleetConfig(app, num_groups, /*shards=*/1));
    serving::FleetSystem sharded(MakeFleetConfig(app, num_groups, /*shards=*/4));
    const serving::FleetResult a = seq.Run(trace);
    const serving::FleetResult b = sharded.Run(trace);
    identical = metrics::BitIdentical(a.collector, b.collector) && a.events == b.events &&
                a.group_completed == b.group_completed;
    std::printf("BIT-IDENTITY (shards 1 vs 4): %s\n", identical ? "PASS" : "FAIL");
  }

  if (!flags.json_path.empty()) {
    BenchJson json("fig_fleet");
    json.AddBool("smoke", flags.smoke);
    json.AddInt("shards", flags.shards);
    json.AddInt("num_groups", num_groups);
    json.AddInt("instances", num_groups * instances_per_group);
    json.AddInt("requests", static_cast<int64_t>(trace.size()));
    json.AddInt("completed", static_cast<int64_t>(result.collector.count()));
    json.AddInt("lost", static_cast<int64_t>(result.collector.lost_count()));
    json.AddDouble("attainment_both", att.both);
    json.AddDouble("goodput", goodput);
    json.AddInt("events", result.events);
    json.AddInt("sync_rounds", result.sim_stats.sync_rounds);
    json.AddInt("cross_shard_messages", result.sim_stats.messages);
    json.AddInt("channel_spills", result.sim_stats.channel_spills);
    std::string per_shard;
    for (const auto& s : result.sim_stats.shards) {
      char buf[96];
      std::snprintf(buf, sizeof buf, "%s{\"events\": %lld, \"messages_in\": %lld}",
                    per_shard.empty() ? "" : ", ", static_cast<long long>(s.events),
                    static_cast<long long>(s.messages_in));
      per_shard += buf;
    }
    json.AddRaw("per_shard", "[" + per_shard + "]");
    json.AddWallMs(timer);
    if (!json.WriteTo(flags.json_path)) {
      std::fprintf(stderr, "failed to write %s\n", flags.json_path.c_str());
      return 1;
    }
  }
  return (served_all && identical) ? 0 : 1;
}

}  // namespace
}  // namespace distserve::bench

int main(int argc, char** argv) { return distserve::bench::Main(argc, argv); }
