// Figure 1: the motivating experiment.
//
// OPT-13B, synthetic workload with input 512 / output 64, one A100. Three systems:
//   * "existing" — a colocated vLLM-style instance on 1 GPU (P90 TTFT and P90 TPOT);
//   * "prefill-only" — a system serving only the prefill phase on 1 GPU (P90 TTFT);
//   * "decode-only" — a system serving only the decoding phase on 1 GPU (P90 TPOT).
// The paper's shape: colocated P90s blow up at ~1.6 rps under 90% attainment, while the
// dedicated phases sustain several times more (5.6 rps prefill, 10 rps decode per GPU).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "engine/prefill_instance.h"
#include "placement/fast_sim.h"

namespace distserve {
namespace {

constexpr int kInputLen = 512;
constexpr int kOutputLen = 64;
constexpr int kRequests = 2000;
constexpr double kTtftSlo = 0.4;
constexpr double kTpotSlo = 0.04;

workload::Trace MakeTrace(double rate, uint64_t seed) {
  workload::FixedDataset dataset(kInputLen, kOutputLen);
  workload::TraceSpec spec;
  spec.rate = rate;
  spec.num_requests = kRequests;
  spec.seed = seed;
  return workload::GenerateTrace(spec, dataset);
}

// P90 TTFT of a prefill-only instance on one GPU.
double PrefillOnlyP90Ttft(const model::LatencyModel& lm, double rate) {
  const workload::Trace trace = MakeTrace(rate, 11);
  const std::vector<double> finish = placement::SimulatePrefillFinishTimes(
      lm, trace, /*target_tokens=*/512, /*max_batch_size=*/64);
  PercentileTracker ttft;
  for (size_t i = 0; i < trace.size(); ++i) {
    ttft.Add(finish[i] - trace[i].arrival_time);
  }
  return ttft.Percentile(90);
}

// P90 TPOT of a decode-only instance on one GPU (requests arrive with prefill done).
double DecodeOnlyP90Tpot(const model::LatencyModel& lm, int64_t kv_capacity, double rate) {
  const workload::Trace trace = MakeTrace(rate, 13);
  std::vector<double> ready(trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    ready[i] = trace[i].arrival_time;
  }
  const std::vector<double> tpots =
      placement::SimulateDecodeTpots(lm, kv_capacity, trace, ready, /*max_batch_size=*/512);
  PercentileTracker tracker;
  for (double t : tpots) {
    tracker.Add(t);
  }
  return tracker.Percentile(90);
}

}  // namespace

int Main() {
  const model::ModelSpec spec = model::ModelSpec::Opt13B();
  const cluster::ClusterSpec cluster = cluster::ClusterSpec::PaperTestbed();
  const model::LatencyModel lm(spec, {1, 1}, cluster.gpu);
  const int64_t kv_capacity =
      model::ShardedModelView(spec, {1, 1}).KvCapacityTokens(cluster.gpu);

  bench::PrintBanner(
      "Figure 1: P90 TTFT / TPOT vs rate, colocated vs dedicated phases (OPT-13B, 512x64)");
  std::printf("# TTFT SLO ~%.2fs, TPOT SLO ~%.3fs (vertical-line analogues below)\n", kTtftSlo,
              kTpotSlo);
  std::printf("%-8s %14s %14s %14s %14s\n", "rate", "coloc-TTFT90", "coloc-TPOT90",
              "prefill-TTFT90", "decode-TPOT90");

  double coloc_goodput = 0.0;
  double prefill_goodput = 0.0;
  double decode_goodput = 0.0;
  for (double rate : {0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0, 12.0}) {
    const bench::RunFn coloc = bench::MakeVllmRunner(spec, cluster, /*tp=*/1, /*instances=*/1);
    const metrics::Collector results = coloc(MakeTrace(rate, 7));
    const double coloc_ttft = results.TtftPercentile(90);
    const double coloc_tpot = results.TpotPercentile(90);
    const double prefill_ttft = PrefillOnlyP90Ttft(lm, rate);
    const double decode_tpot = DecodeOnlyP90Tpot(lm, kv_capacity, rate);
    std::printf("%-8.2f %13.0fms %13.1fms %13.0fms %13.1fms\n", rate, 1e3 * coloc_ttft,
                1e3 * coloc_tpot, 1e3 * prefill_ttft, 1e3 * decode_tpot);
    if (coloc_ttft <= kTtftSlo && coloc_tpot <= kTpotSlo) {
      coloc_goodput = rate;
    }
    if (prefill_ttft <= kTtftSlo) {
      prefill_goodput = rate;
    }
    if (decode_tpot <= kTpotSlo) {
      decode_goodput = rate;
    }
  }
  std::printf(
      "\nPer-GPU goodput under P90 SLOs: colocated=%.2f rps, prefill-only=%.2f rps, "
      "decode-only=%.2f rps\n",
      coloc_goodput, prefill_goodput, decode_goodput);
  const double ideal =
      1.0 / (1.0 / prefill_goodput + 1.0 / decode_goodput);
  std::printf(
      "Disaggregation headroom (paper's 2P1D argument): ideal per-GPU goodput %.2f rps = "
      "%.2fx colocation\n",
      ideal, ideal / coloc_goodput);
  return 0;
}

}  // namespace distserve

int main() { return distserve::Main(); }
