file(REMOVE_RECURSE
  "libds_metrics.a"
)
