file(REMOVE_RECURSE
  "CMakeFiles/ds_metrics.dir/collector.cc.o"
  "CMakeFiles/ds_metrics.dir/collector.cc.o.d"
  "libds_metrics.a"
  "libds_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
