# Empty dependencies file for ds_serving.
# This may be replaced when dependencies are built.
