file(REMOVE_RECURSE
  "libds_serving.a"
)
