file(REMOVE_RECURSE
  "CMakeFiles/ds_serving.dir/replanner.cc.o"
  "CMakeFiles/ds_serving.dir/replanner.cc.o.d"
  "CMakeFiles/ds_serving.dir/serving_system.cc.o"
  "CMakeFiles/ds_serving.dir/serving_system.cc.o.d"
  "CMakeFiles/ds_serving.dir/transfer.cc.o"
  "CMakeFiles/ds_serving.dir/transfer.cc.o.d"
  "libds_serving.a"
  "libds_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
