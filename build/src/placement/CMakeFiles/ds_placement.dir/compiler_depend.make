# Empty compiler generated dependencies file for ds_placement.
# This may be replaced when dependencies are built.
