file(REMOVE_RECURSE
  "CMakeFiles/ds_placement.dir/algorithms.cc.o"
  "CMakeFiles/ds_placement.dir/algorithms.cc.o.d"
  "CMakeFiles/ds_placement.dir/fast_sim.cc.o"
  "CMakeFiles/ds_placement.dir/fast_sim.cc.o.d"
  "CMakeFiles/ds_placement.dir/goodput.cc.o"
  "CMakeFiles/ds_placement.dir/goodput.cc.o.d"
  "CMakeFiles/ds_placement.dir/placement.cc.o"
  "CMakeFiles/ds_placement.dir/placement.cc.o.d"
  "libds_placement.a"
  "libds_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
