file(REMOVE_RECURSE
  "libds_placement.a"
)
