
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/placement/algorithms.cc" "src/placement/CMakeFiles/ds_placement.dir/algorithms.cc.o" "gcc" "src/placement/CMakeFiles/ds_placement.dir/algorithms.cc.o.d"
  "/root/repo/src/placement/fast_sim.cc" "src/placement/CMakeFiles/ds_placement.dir/fast_sim.cc.o" "gcc" "src/placement/CMakeFiles/ds_placement.dir/fast_sim.cc.o.d"
  "/root/repo/src/placement/goodput.cc" "src/placement/CMakeFiles/ds_placement.dir/goodput.cc.o" "gcc" "src/placement/CMakeFiles/ds_placement.dir/goodput.cc.o.d"
  "/root/repo/src/placement/placement.cc" "src/placement/CMakeFiles/ds_placement.dir/placement.cc.o" "gcc" "src/placement/CMakeFiles/ds_placement.dir/placement.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ds_model.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ds_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ds_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ds_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
