file(REMOVE_RECURSE
  "libds_queueing.a"
)
