file(REMOVE_RECURSE
  "CMakeFiles/ds_queueing.dir/md1.cc.o"
  "CMakeFiles/ds_queueing.dir/md1.cc.o.d"
  "libds_queueing.a"
  "libds_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
