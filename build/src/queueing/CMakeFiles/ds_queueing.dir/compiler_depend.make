# Empty compiler generated dependencies file for ds_queueing.
# This may be replaced when dependencies are built.
