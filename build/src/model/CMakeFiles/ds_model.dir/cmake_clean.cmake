file(REMOVE_RECURSE
  "CMakeFiles/ds_model.dir/calibration.cc.o"
  "CMakeFiles/ds_model.dir/calibration.cc.o.d"
  "CMakeFiles/ds_model.dir/latency_model.cc.o"
  "CMakeFiles/ds_model.dir/latency_model.cc.o.d"
  "CMakeFiles/ds_model.dir/model_spec.cc.o"
  "CMakeFiles/ds_model.dir/model_spec.cc.o.d"
  "CMakeFiles/ds_model.dir/parallelism.cc.o"
  "CMakeFiles/ds_model.dir/parallelism.cc.o.d"
  "libds_model.a"
  "libds_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
