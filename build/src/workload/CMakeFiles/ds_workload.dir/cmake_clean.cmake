file(REMOVE_RECURSE
  "CMakeFiles/ds_workload.dir/arrival.cc.o"
  "CMakeFiles/ds_workload.dir/arrival.cc.o.d"
  "CMakeFiles/ds_workload.dir/dataset.cc.o"
  "CMakeFiles/ds_workload.dir/dataset.cc.o.d"
  "CMakeFiles/ds_workload.dir/generator.cc.o"
  "CMakeFiles/ds_workload.dir/generator.cc.o.d"
  "CMakeFiles/ds_workload.dir/profiler.cc.o"
  "CMakeFiles/ds_workload.dir/profiler.cc.o.d"
  "CMakeFiles/ds_workload.dir/trace_io.cc.o"
  "CMakeFiles/ds_workload.dir/trace_io.cc.o.d"
  "libds_workload.a"
  "libds_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
