file(REMOVE_RECURSE
  "CMakeFiles/ds_baselines.dir/vllm_system.cc.o"
  "CMakeFiles/ds_baselines.dir/vllm_system.cc.o.d"
  "libds_baselines.a"
  "libds_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
