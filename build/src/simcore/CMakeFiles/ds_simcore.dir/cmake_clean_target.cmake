file(REMOVE_RECURSE
  "libds_simcore.a"
)
