file(REMOVE_RECURSE
  "CMakeFiles/ds_simcore.dir/event_queue.cc.o"
  "CMakeFiles/ds_simcore.dir/event_queue.cc.o.d"
  "CMakeFiles/ds_simcore.dir/simulator.cc.o"
  "CMakeFiles/ds_simcore.dir/simulator.cc.o.d"
  "libds_simcore.a"
  "libds_simcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_simcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
