# Empty compiler generated dependencies file for ds_simcore.
# This may be replaced when dependencies are built.
