file(REMOVE_RECURSE
  "CMakeFiles/ds_engine.dir/batch_former.cc.o"
  "CMakeFiles/ds_engine.dir/batch_former.cc.o.d"
  "CMakeFiles/ds_engine.dir/colocated_instance.cc.o"
  "CMakeFiles/ds_engine.dir/colocated_instance.cc.o.d"
  "CMakeFiles/ds_engine.dir/decode_instance.cc.o"
  "CMakeFiles/ds_engine.dir/decode_instance.cc.o.d"
  "CMakeFiles/ds_engine.dir/kv_block_manager.cc.o"
  "CMakeFiles/ds_engine.dir/kv_block_manager.cc.o.d"
  "CMakeFiles/ds_engine.dir/prefill_instance.cc.o"
  "CMakeFiles/ds_engine.dir/prefill_instance.cc.o.d"
  "libds_engine.a"
  "libds_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
