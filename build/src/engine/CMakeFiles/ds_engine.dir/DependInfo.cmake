
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/batch_former.cc" "src/engine/CMakeFiles/ds_engine.dir/batch_former.cc.o" "gcc" "src/engine/CMakeFiles/ds_engine.dir/batch_former.cc.o.d"
  "/root/repo/src/engine/colocated_instance.cc" "src/engine/CMakeFiles/ds_engine.dir/colocated_instance.cc.o" "gcc" "src/engine/CMakeFiles/ds_engine.dir/colocated_instance.cc.o.d"
  "/root/repo/src/engine/decode_instance.cc" "src/engine/CMakeFiles/ds_engine.dir/decode_instance.cc.o" "gcc" "src/engine/CMakeFiles/ds_engine.dir/decode_instance.cc.o.d"
  "/root/repo/src/engine/kv_block_manager.cc" "src/engine/CMakeFiles/ds_engine.dir/kv_block_manager.cc.o" "gcc" "src/engine/CMakeFiles/ds_engine.dir/kv_block_manager.cc.o.d"
  "/root/repo/src/engine/prefill_instance.cc" "src/engine/CMakeFiles/ds_engine.dir/prefill_instance.cc.o" "gcc" "src/engine/CMakeFiles/ds_engine.dir/prefill_instance.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ds_model.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ds_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/ds_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ds_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ds_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
