# Empty dependencies file for ds_cluster.
# This may be replaced when dependencies are built.
