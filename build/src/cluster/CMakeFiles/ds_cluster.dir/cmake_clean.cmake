file(REMOVE_RECURSE
  "CMakeFiles/ds_cluster.dir/gpu_spec.cc.o"
  "CMakeFiles/ds_cluster.dir/gpu_spec.cc.o.d"
  "CMakeFiles/ds_cluster.dir/topology.cc.o"
  "CMakeFiles/ds_cluster.dir/topology.cc.o.d"
  "libds_cluster.a"
  "libds_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
