file(REMOVE_RECURSE
  "libds_cluster.a"
)
