# Empty dependencies file for fig5_decode_parallelism.
# This may be replaced when dependencies are built.
