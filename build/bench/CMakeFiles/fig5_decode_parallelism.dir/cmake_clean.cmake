file(REMOVE_RECURSE
  "CMakeFiles/fig5_decode_parallelism.dir/fig5_decode_parallelism.cc.o"
  "CMakeFiles/fig5_decode_parallelism.dir/fig5_decode_parallelism.cc.o.d"
  "fig5_decode_parallelism"
  "fig5_decode_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_decode_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
