# Empty compiler generated dependencies file for appendix_b_placements.
# This may be replaced when dependencies are built.
