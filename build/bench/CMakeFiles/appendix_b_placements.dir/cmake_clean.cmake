file(REMOVE_RECURSE
  "CMakeFiles/appendix_b_placements.dir/appendix_b_placements.cc.o"
  "CMakeFiles/appendix_b_placements.dir/appendix_b_placements.cc.o.d"
  "appendix_b_placements"
  "appendix_b_placements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/appendix_b_placements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
