file(REMOVE_RECURSE
  "CMakeFiles/fig8_chatbot_e2e.dir/fig8_chatbot_e2e.cc.o"
  "CMakeFiles/fig8_chatbot_e2e.dir/fig8_chatbot_e2e.cc.o.d"
  "fig8_chatbot_e2e"
  "fig8_chatbot_e2e.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_chatbot_e2e.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
