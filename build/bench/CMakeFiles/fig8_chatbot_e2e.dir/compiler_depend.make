# Empty compiler generated dependencies file for fig8_chatbot_e2e.
# This may be replaced when dependencies are built.
