file(REMOVE_RECURSE
  "CMakeFiles/fig3_phase_throughput.dir/fig3_phase_throughput.cc.o"
  "CMakeFiles/fig3_phase_throughput.dir/fig3_phase_throughput.cc.o.d"
  "fig3_phase_throughput"
  "fig3_phase_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_phase_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
