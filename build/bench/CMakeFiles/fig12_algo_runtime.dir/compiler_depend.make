# Empty compiler generated dependencies file for fig12_algo_runtime.
# This may be replaced when dependencies are built.
