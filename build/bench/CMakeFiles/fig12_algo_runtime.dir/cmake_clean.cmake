file(REMOVE_RECURSE
  "CMakeFiles/fig12_algo_runtime.dir/fig12_algo_runtime.cc.o"
  "CMakeFiles/fig12_algo_runtime.dir/fig12_algo_runtime.cc.o.d"
  "fig12_algo_runtime"
  "fig12_algo_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_algo_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
