# Empty compiler generated dependencies file for fig7_datasets.
# This may be replaced when dependencies are built.
