file(REMOVE_RECURSE
  "CMakeFiles/fig7_datasets.dir/fig7_datasets.cc.o"
  "CMakeFiles/fig7_datasets.dir/fig7_datasets.cc.o.d"
  "fig7_datasets"
  "fig7_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
