# Empty compiler generated dependencies file for fig4_prefill_parallelism.
# This may be replaced when dependencies are built.
