file(REMOVE_RECURSE
  "CMakeFiles/fig4_prefill_parallelism.dir/fig4_prefill_parallelism.cc.o"
  "CMakeFiles/fig4_prefill_parallelism.dir/fig4_prefill_parallelism.cc.o.d"
  "fig4_prefill_parallelism"
  "fig4_prefill_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_prefill_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
