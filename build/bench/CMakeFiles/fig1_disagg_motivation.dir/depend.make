# Empty dependencies file for fig1_disagg_motivation.
# This may be replaced when dependencies are built.
