file(REMOVE_RECURSE
  "CMakeFiles/fig9_code_summarization.dir/fig9_code_summarization.cc.o"
  "CMakeFiles/fig9_code_summarization.dir/fig9_code_summarization.cc.o.d"
  "fig9_code_summarization"
  "fig9_code_summarization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_code_summarization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
