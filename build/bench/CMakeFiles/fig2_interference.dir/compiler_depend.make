# Empty compiler generated dependencies file for fig2_interference.
# This may be replaced when dependencies are built.
