file(REMOVE_RECURSE
  "CMakeFiles/fig2_interference.dir/fig2_interference.cc.o"
  "CMakeFiles/fig2_interference.dir/fig2_interference.cc.o.d"
  "fig2_interference"
  "fig2_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
