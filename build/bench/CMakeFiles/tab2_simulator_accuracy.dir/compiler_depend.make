# Empty compiler generated dependencies file for tab2_simulator_accuracy.
# This may be replaced when dependencies are built.
