file(REMOVE_RECURSE
  "CMakeFiles/tab2_simulator_accuracy.dir/tab2_simulator_accuracy.cc.o"
  "CMakeFiles/tab2_simulator_accuracy.dir/tab2_simulator_accuracy.cc.o.d"
  "tab2_simulator_accuracy"
  "tab2_simulator_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab2_simulator_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
