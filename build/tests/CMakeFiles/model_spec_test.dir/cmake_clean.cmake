file(REMOVE_RECURSE
  "CMakeFiles/model_spec_test.dir/model_spec_test.cc.o"
  "CMakeFiles/model_spec_test.dir/model_spec_test.cc.o.d"
  "model_spec_test"
  "model_spec_test.pdb"
  "model_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
