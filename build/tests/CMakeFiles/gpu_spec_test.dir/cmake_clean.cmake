file(REMOVE_RECURSE
  "CMakeFiles/gpu_spec_test.dir/gpu_spec_test.cc.o"
  "CMakeFiles/gpu_spec_test.dir/gpu_spec_test.cc.o.d"
  "gpu_spec_test"
  "gpu_spec_test.pdb"
  "gpu_spec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_spec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
