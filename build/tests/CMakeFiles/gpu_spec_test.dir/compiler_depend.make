# Empty compiler generated dependencies file for gpu_spec_test.
# This may be replaced when dependencies are built.
