# Empty dependencies file for linear_fit_test.
# This may be replaced when dependencies are built.
