file(REMOVE_RECURSE
  "CMakeFiles/linear_fit_test.dir/linear_fit_test.cc.o"
  "CMakeFiles/linear_fit_test.dir/linear_fit_test.cc.o.d"
  "linear_fit_test"
  "linear_fit_test.pdb"
  "linear_fit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_fit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
