# Empty dependencies file for prefill_instance_test.
# This may be replaced when dependencies are built.
