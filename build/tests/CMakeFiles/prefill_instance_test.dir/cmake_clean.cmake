file(REMOVE_RECURSE
  "CMakeFiles/prefill_instance_test.dir/prefill_instance_test.cc.o"
  "CMakeFiles/prefill_instance_test.dir/prefill_instance_test.cc.o.d"
  "prefill_instance_test"
  "prefill_instance_test.pdb"
  "prefill_instance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefill_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
