# Empty compiler generated dependencies file for kv_block_manager_test.
# This may be replaced when dependencies are built.
