file(REMOVE_RECURSE
  "CMakeFiles/kv_block_manager_test.dir/kv_block_manager_test.cc.o"
  "CMakeFiles/kv_block_manager_test.dir/kv_block_manager_test.cc.o.d"
  "kv_block_manager_test"
  "kv_block_manager_test.pdb"
  "kv_block_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_block_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
