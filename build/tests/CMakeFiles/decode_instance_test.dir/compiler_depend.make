# Empty compiler generated dependencies file for decode_instance_test.
# This may be replaced when dependencies are built.
