file(REMOVE_RECURSE
  "CMakeFiles/decode_instance_test.dir/decode_instance_test.cc.o"
  "CMakeFiles/decode_instance_test.dir/decode_instance_test.cc.o.d"
  "decode_instance_test"
  "decode_instance_test.pdb"
  "decode_instance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decode_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
