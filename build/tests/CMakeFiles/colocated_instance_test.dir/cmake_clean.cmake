file(REMOVE_RECURSE
  "CMakeFiles/colocated_instance_test.dir/colocated_instance_test.cc.o"
  "CMakeFiles/colocated_instance_test.dir/colocated_instance_test.cc.o.d"
  "colocated_instance_test"
  "colocated_instance_test.pdb"
  "colocated_instance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colocated_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
