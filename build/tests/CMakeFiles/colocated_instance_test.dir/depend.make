# Empty dependencies file for colocated_instance_test.
# This may be replaced when dependencies are built.
