# Empty dependencies file for md1_test.
# This may be replaced when dependencies are built.
