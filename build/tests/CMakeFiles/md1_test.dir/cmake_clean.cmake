file(REMOVE_RECURSE
  "CMakeFiles/md1_test.dir/md1_test.cc.o"
  "CMakeFiles/md1_test.dir/md1_test.cc.o.d"
  "md1_test"
  "md1_test.pdb"
  "md1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
