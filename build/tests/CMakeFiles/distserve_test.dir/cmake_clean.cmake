file(REMOVE_RECURSE
  "CMakeFiles/distserve_test.dir/distserve_test.cc.o"
  "CMakeFiles/distserve_test.dir/distserve_test.cc.o.d"
  "distserve_test"
  "distserve_test.pdb"
  "distserve_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distserve_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
