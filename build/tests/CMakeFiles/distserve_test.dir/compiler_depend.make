# Empty compiler generated dependencies file for distserve_test.
# This may be replaced when dependencies are built.
