# Empty dependencies file for batch_former_test.
# This may be replaced when dependencies are built.
