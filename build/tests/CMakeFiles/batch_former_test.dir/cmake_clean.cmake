file(REMOVE_RECURSE
  "CMakeFiles/batch_former_test.dir/batch_former_test.cc.o"
  "CMakeFiles/batch_former_test.dir/batch_former_test.cc.o.d"
  "batch_former_test"
  "batch_former_test.pdb"
  "batch_former_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_former_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
