
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/algorithms_test.cc" "tests/CMakeFiles/algorithms_test.dir/algorithms_test.cc.o" "gcc" "tests/CMakeFiles/algorithms_test.dir/algorithms_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/serving/CMakeFiles/ds_serving.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/ds_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/placement/CMakeFiles/ds_placement.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/ds_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/ds_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/ds_model.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/ds_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/simcore/CMakeFiles/ds_simcore.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/ds_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/ds_queueing.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
