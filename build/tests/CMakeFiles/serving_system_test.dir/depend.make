# Empty dependencies file for serving_system_test.
# This may be replaced when dependencies are built.
