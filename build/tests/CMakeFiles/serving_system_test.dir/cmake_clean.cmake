file(REMOVE_RECURSE
  "CMakeFiles/serving_system_test.dir/serving_system_test.cc.o"
  "CMakeFiles/serving_system_test.dir/serving_system_test.cc.o.d"
  "serving_system_test"
  "serving_system_test.pdb"
  "serving_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serving_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
