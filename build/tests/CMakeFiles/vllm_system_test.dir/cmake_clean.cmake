file(REMOVE_RECURSE
  "CMakeFiles/vllm_system_test.dir/vllm_system_test.cc.o"
  "CMakeFiles/vllm_system_test.dir/vllm_system_test.cc.o.d"
  "vllm_system_test"
  "vllm_system_test.pdb"
  "vllm_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vllm_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
