# Empty compiler generated dependencies file for vllm_system_test.
# This may be replaced when dependencies are built.
