# Empty dependencies file for goodput_test.
# This may be replaced when dependencies are built.
