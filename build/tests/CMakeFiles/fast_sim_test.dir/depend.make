# Empty dependencies file for fast_sim_test.
# This may be replaced when dependencies are built.
