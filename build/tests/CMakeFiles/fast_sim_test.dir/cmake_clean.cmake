file(REMOVE_RECURSE
  "CMakeFiles/fast_sim_test.dir/fast_sim_test.cc.o"
  "CMakeFiles/fast_sim_test.dir/fast_sim_test.cc.o.d"
  "fast_sim_test"
  "fast_sim_test.pdb"
  "fast_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fast_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
