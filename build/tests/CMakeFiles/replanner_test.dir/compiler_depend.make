# Empty compiler generated dependencies file for replanner_test.
# This may be replaced when dependencies are built.
