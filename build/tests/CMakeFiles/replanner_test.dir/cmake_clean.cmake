file(REMOVE_RECURSE
  "CMakeFiles/replanner_test.dir/replanner_test.cc.o"
  "CMakeFiles/replanner_test.dir/replanner_test.cc.o.d"
  "replanner_test"
  "replanner_test.pdb"
  "replanner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replanner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
