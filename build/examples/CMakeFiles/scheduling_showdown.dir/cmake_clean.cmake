file(REMOVE_RECURSE
  "CMakeFiles/scheduling_showdown.dir/scheduling_showdown.cpp.o"
  "CMakeFiles/scheduling_showdown.dir/scheduling_showdown.cpp.o.d"
  "scheduling_showdown"
  "scheduling_showdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scheduling_showdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
