# Empty dependencies file for scheduling_showdown.
# This may be replaced when dependencies are built.
