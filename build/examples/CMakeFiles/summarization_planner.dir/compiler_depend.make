# Empty compiler generated dependencies file for summarization_planner.
# This may be replaced when dependencies are built.
