file(REMOVE_RECURSE
  "CMakeFiles/summarization_planner.dir/summarization_planner.cpp.o"
  "CMakeFiles/summarization_planner.dir/summarization_planner.cpp.o.d"
  "summarization_planner"
  "summarization_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summarization_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
