# Empty compiler generated dependencies file for replanning_demo.
# This may be replaced when dependencies are built.
